//! Self-time profile aggregation: folds a [`Trace`](crate::Trace) into
//! per-(thread, span-stack) **self/total** wall-time tables and renders
//! the flamegraph-collapsed stack format (`a;b;c 1234`, one line per
//! stack, value = self time in microseconds).
//!
//! The Chrome trace JSON shows *when* spans ran; this fold shows *where
//! the time went*: a span's **total** time is its own duration, its
//! **self** time is that duration minus the time covered by its direct
//! children on the same thread — the quantity a flamegraph plots. Feed
//! the collapsed output to `inferno-flamegraph` / `flamegraph.pl`, or
//! read the table directly (`Profile::rows` is sorted by self time,
//! hottest first).
//!
//! ```
//! bisched_obs::start_recording(1 << 10);
//! {
//!     let _outer = bisched_obs::span("solve", "core");
//!     let _inner = bisched_obs::span("fptas_layer", "fptas");
//! }
//! let trace = bisched_obs::stop_recording();
//! let profile = bisched_obs::Profile::from_trace(&trace);
//! let collapsed = profile.to_collapsed();
//! assert!(collapsed.contains("solve;fptas_layer "));
//! // Every line obeys the collapsed grammar: name(;name)* <int>
//! for line in collapsed.lines() {
//!     let (stack, n) = line.rsplit_once(' ').unwrap();
//!     assert!(!stack.is_empty() && n.parse::<u64>().is_ok());
//! }
//! ```

use crate::{EventKind, Trace, TraceEvent};
use std::collections::BTreeMap;

/// One aggregated (thread, span-stack) row of a [`Profile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileRow {
    /// Dense id of the thread the stack ran on.
    pub tid: u64,
    /// The span stack, outermost first (`["solve", "fptas_layer"]`).
    pub stack: Vec<&'static str>,
    /// How many spans folded into this row.
    pub count: u64,
    /// Summed span durations, microseconds (includes children's time).
    pub total_us: u64,
    /// Summed durations minus the time covered by direct children —
    /// the flamegraph value.
    pub self_us: u64,
}

/// A span currently open during the per-thread replay: its end time,
/// its own duration, and the duration covered by direct children so far.
struct OpenSpan {
    end_us: u64,
    dur_us: u64,
    child_us: u64,
}

/// A folded trace: per-(thread, stack) self/total-time rows.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Aggregated rows, sorted by self time descending (ties broken by
    /// `(tid, stack)` for determinism).
    pub rows: Vec<ProfileRow>,
}

impl Profile {
    /// Folds a trace's span events into self/total-time rows. Instants
    /// and counters are ignored (they carry no duration); nesting is
    /// reconstructed per thread from interval containment, which is
    /// exact because span guards on one thread strictly nest.
    pub fn from_trace(trace: &Trace) -> Profile {
        let mut by_tid: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
        for ev in &trace.events {
            if ev.kind == EventKind::Span {
                by_tid.entry(ev.tid).or_default().push(ev);
            }
        }
        // (tid, stack) -> (count, total_us, self_us)
        let mut table: BTreeMap<(u64, Vec<&'static str>), (u64, u64, u64)> = BTreeMap::new();
        for (tid, mut spans) in by_tid {
            // Parents before children: start ascending and, at equal
            // starts, duration descending (an enclosing span cannot be
            // shorter than what it encloses).
            spans.sort_by_key(|e| (e.ts_us, std::cmp::Reverse(e.dur_us)));
            let mut open: Vec<OpenSpan> = Vec::new();
            let mut names: Vec<&'static str> = Vec::new();
            for ev in spans {
                // Close every open span that ends at or before this start.
                while open.last().is_some_and(|s| s.end_us <= ev.ts_us) {
                    close_top(tid, &mut open, &mut names, &mut table);
                }
                // Credit this span's duration to the parent's child time.
                if let Some(parent) = open.last_mut() {
                    parent.child_us += ev.dur_us;
                }
                open.push(OpenSpan {
                    end_us: ev.ts_us.saturating_add(ev.dur_us),
                    dur_us: ev.dur_us,
                    child_us: 0,
                });
                names.push(ev.name);
            }
            while !open.is_empty() {
                close_top(tid, &mut open, &mut names, &mut table);
            }
        }
        let mut rows: Vec<ProfileRow> = table
            .into_iter()
            .map(|((tid, stack), (count, total_us, self_us))| ProfileRow {
                tid,
                stack,
                count,
                total_us,
                self_us,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.self_us
                .cmp(&a.self_us)
                .then_with(|| a.tid.cmp(&b.tid))
                .then_with(|| a.stack.cmp(&b.stack))
        });
        Profile { rows }
    }

    /// Renders the profile in flamegraph-collapsed stack format: one
    /// `name;name;... <self-µs>` line per distinct stack, aggregated
    /// across threads, sorted lexicographically (deterministic output
    /// for identical traces). Frame names are sanitized so every line
    /// matches the grammar `name(;name)* <int>` — spaces, semicolons,
    /// and control characters inside a frame become `_`.
    pub fn to_collapsed(&self) -> String {
        let mut merged: BTreeMap<String, u64> = BTreeMap::new();
        for row in &self.rows {
            let stack = row
                .stack
                .iter()
                .map(|name| sanitize_frame(name))
                .collect::<Vec<String>>()
                .join(";");
            *merged.entry(stack).or_insert(0) += row.self_us;
        }
        let mut out = String::new();
        for (stack, self_us) in merged {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&self_us.to_string());
            out.push('\n');
        }
        out
    }
}

/// Closes the top open span: settles its self time (duration minus the
/// time its direct children covered) into the (tid, stack) row. The
/// total was **not** added at open time so that a row's fields settle
/// together here.
fn close_top(
    tid: u64,
    open: &mut Vec<OpenSpan>,
    names: &mut Vec<&'static str>,
    table: &mut BTreeMap<(u64, Vec<&'static str>), (u64, u64, u64)>,
) {
    let span = open.pop().expect("close_top on empty stack");
    let stack = names.clone();
    names.pop();
    let entry = table.entry((tid, stack)).or_insert((0, 0, 0));
    entry.0 += 1;
    entry.1 += span.dur_us;
    entry.2 += span.dur_us.saturating_sub(span.child_us);
}

/// Replace spaces/semicolons (grammar-breaking in collapsed format) and
/// control characters with `_`.
fn sanitize_frame(name: &str) -> String {
    if name.is_empty() {
        return "unnamed".to_string();
    }
    name.chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(tid: u64, name: &'static str, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            dur_us: dur,
            kind: EventKind::Span,
            name,
            cat: "test",
            arg_name: "",
            arg: 0,
            tid,
        }
    }

    fn instant(tid: u64, name: &'static str, ts: u64) -> TraceEvent {
        TraceEvent {
            ts_us: ts,
            dur_us: 0,
            kind: EventKind::Instant,
            name,
            cat: "test",
            arg_name: "",
            arg: 0,
            tid,
        }
    }

    #[test]
    fn nested_spans_split_self_and_total() {
        let trace = Trace {
            events: vec![
                span(0, "outer", 0, 100),
                span(0, "inner", 10, 30),
                span(0, "inner", 50, 20),
            ],
            dropped: 0,
        };
        let p = Profile::from_trace(&trace);
        let outer = p
            .rows
            .iter()
            .find(|r| r.stack == vec!["outer"])
            .expect("outer row");
        assert_eq!(outer.count, 1);
        assert_eq!(outer.total_us, 100);
        assert_eq!(outer.self_us, 50); // 100 - 30 - 20
        let inner = p
            .rows
            .iter()
            .find(|r| r.stack == vec!["outer", "inner"])
            .expect("inner row");
        assert_eq!(inner.count, 2);
        assert_eq!(inner.total_us, 50);
        assert_eq!(inner.self_us, 50); // leaves: self == total
    }

    #[test]
    fn grandchildren_only_charge_their_direct_parent() {
        let trace = Trace {
            events: vec![
                span(0, "a", 0, 100),
                span(0, "b", 10, 80),
                span(0, "c", 20, 40),
            ],
            dropped: 0,
        };
        let p = Profile::from_trace(&trace);
        let a = p.rows.iter().find(|r| r.stack == vec!["a"]).unwrap();
        assert_eq!(a.self_us, 20); // 100 - 80 (b only; c charges b)
        let b = p.rows.iter().find(|r| r.stack == vec!["a", "b"]).unwrap();
        assert_eq!(b.self_us, 40); // 80 - 40
        let c = p
            .rows
            .iter()
            .find(|r| r.stack == vec!["a", "b", "c"])
            .unwrap();
        assert_eq!(c.self_us, 40);
    }

    #[test]
    fn threads_fold_independently_and_merge_in_collapsed() {
        let trace = Trace {
            events: vec![
                span(0, "work", 0, 10),
                span(1, "work", 0, 30),
                instant(0, "marker", 5),
            ],
            dropped: 0,
        };
        let p = Profile::from_trace(&trace);
        assert_eq!(p.rows.len(), 2); // one "work" row per thread
        assert_eq!(p.to_collapsed(), "work 40\n"); // merged across threads
    }

    #[test]
    fn equal_start_ties_pick_longer_span_as_parent() {
        let trace = Trace {
            events: vec![span(0, "child", 0, 10), span(0, "parent", 0, 50)],
            dropped: 0,
        };
        let p = Profile::from_trace(&trace);
        assert!(p.rows.iter().any(|r| r.stack == vec!["parent", "child"]));
        assert!(!p.rows.iter().any(|r| r.stack == vec!["child"]));
    }

    #[test]
    fn collapsed_output_is_sorted_and_grammar_clean() {
        let trace = Trace {
            events: vec![
                span(0, "portfolio race", 0, 100),
                span(0, "branch-and-bound", 10, 40),
                span(0, "list;scheduling", 60, 30),
            ],
            dropped: 0,
        };
        let collapsed = Profile::from_trace(&trace).to_collapsed();
        let lines: Vec<&str> = collapsed.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
        for line in &lines {
            let (stack, n) = line.rsplit_once(' ').expect("stack + value");
            assert!(n.parse::<u64>().is_ok(), "bad value in {line:?}");
            for frame in stack.split(';') {
                assert!(!frame.is_empty(), "empty frame in {line:?}");
                assert!(
                    frame.chars().all(|c| !c.is_whitespace() && c != ';'),
                    "unsanitized frame in {line:?}"
                );
            }
        }
        // Space and semicolon in names got sanitized.
        assert!(collapsed.contains("portfolio_race"));
        assert!(collapsed.contains("list_scheduling"));
    }

    #[test]
    fn empty_trace_folds_to_empty_profile() {
        let trace = Trace {
            events: vec![],
            dropped: 0,
        };
        let p = Profile::from_trace(&trace);
        assert!(p.rows.is_empty());
        assert_eq!(p.to_collapsed(), "");
    }
}
