//! A minimal leveled logger: `2026-08-08T12:00:00.123Z INFO  [service]
//! message` on stderr, with a process-global level. No timestamps
//! crates, no formatting on suppressed lines (the level check happens in
//! the macros before arguments are evaluated).
//!
//! ```
//! use bisched_obs::log::LogLevel;
//! bisched_obs::log::set_level(LogLevel::Debug);
//! bisched_obs::info!("doctest", "served {} requests", 12);
//! bisched_obs::debug!("doctest", "cache key = {:x}", 0xf00du32);
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severities, most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LogLevel {
    /// The service cannot do what was asked.
    Error = 0,
    /// Degraded but proceeding.
    Warn = 1,
    /// Life-cycle events (the default level).
    Info = 2,
    /// Per-request detail.
    Debug = 3,
    /// Everything, including hot-path chatter.
    Trace = 4,
}

impl LogLevel {
    /// Fixed-width tag used in the output line.
    pub fn tag(self) -> &'static str {
        match self {
            LogLevel::Error => "ERROR",
            LogLevel::Warn => "WARN ",
            LogLevel::Info => "INFO ",
            LogLevel::Debug => "DEBUG",
            LogLevel::Trace => "TRACE",
        }
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag().trim_end())
    }
}

impl std::str::FromStr for LogLevel {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(LogLevel::Error),
            "warn" | "warning" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            "trace" => Ok(LogLevel::Trace),
            other => Err(format!(
                "unknown log level '{other}' (expected error|warn|info|debug|trace)"
            )),
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

/// Sets the process-global log level.
pub fn set_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-global log level.
pub fn level() -> LogLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => LogLevel::Error,
        1 => LogLevel::Warn,
        2 => LogLevel::Info,
        3 => LogLevel::Debug,
        _ => LogLevel::Trace,
    }
}

/// Would a line at `l` be emitted right now? The macros call this before
/// evaluating their format arguments.
#[inline]
pub fn enabled(l: LogLevel) -> bool {
    (l as u8) <= LEVEL.load(Ordering::Relaxed)
}

/// Renders a UNIX timestamp as UTC `YYYY-MM-DDTHH:MM:SS.mmmZ` with the
/// standard days-from-civil inversion — no date-time dependency.
fn format_utc(now: SystemTime) -> String {
    let d = now.duration_since(UNIX_EPOCH).unwrap_or_default();
    let secs = d.as_secs();
    let millis = d.subsec_millis();
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (hh, mm, ss) = (rem / 3600, (rem / 60) % 60, rem % 60);
    // civil-from-days (Howard Hinnant's algorithm), valid for the era
    // we care about.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{day:02}T{hh:02}:{mm:02}:{ss:02}.{millis:03}Z")
}

/// Writes one line to stderr if `level` passes the global filter. Prefer
/// the [`error!`](crate::error), [`warn!`](crate::warn),
/// [`info!`](crate::info), [`debug!`](crate::debug), and
/// [`trace!`](crate::trace) macros, which skip argument evaluation for
/// suppressed lines.
pub fn log(level: LogLevel, component: &str, args: fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    eprintln!(
        "{} {} [{component}] {args}",
        format_utc(SystemTime::now()),
        level.tag()
    );
}

/// Logs at [`LogLevel::Error`].
#[macro_export]
macro_rules! error {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Error) {
            $crate::log::log($crate::log::LogLevel::Error, $component, format_args!($($arg)*));
        }
    };
}

/// Logs at [`LogLevel::Warn`].
#[macro_export]
macro_rules! warn {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Warn) {
            $crate::log::log($crate::log::LogLevel::Warn, $component, format_args!($($arg)*));
        }
    };
}

/// Logs at [`LogLevel::Info`].
#[macro_export]
macro_rules! info {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Info) {
            $crate::log::log($crate::log::LogLevel::Info, $component, format_args!($($arg)*));
        }
    };
}

/// Logs at [`LogLevel::Debug`].
#[macro_export]
macro_rules! debug {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Debug) {
            $crate::log::log($crate::log::LogLevel::Debug, $component, format_args!($($arg)*));
        }
    };
}

/// Logs at [`LogLevel::Trace`].
#[macro_export]
macro_rules! trace {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Trace) {
            $crate::log::log($crate::log::LogLevel::Trace, $component, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn levels_parse_and_order() {
        assert!(LogLevel::Error < LogLevel::Trace);
        assert_eq!("warn".parse::<LogLevel>().unwrap(), LogLevel::Warn);
        assert_eq!("DEBUG".parse::<LogLevel>().unwrap(), LogLevel::Debug);
        assert!("loud".parse::<LogLevel>().is_err());
    }

    #[test]
    fn utc_formatting_matches_known_instants() {
        let t = UNIX_EPOCH + Duration::from_millis(0);
        assert_eq!(format_utc(t), "1970-01-01T00:00:00.000Z");
        // 2022-05-30 12:34:56.789 UTC (IPPS 2022 week).
        let t = UNIX_EPOCH + Duration::from_millis(1_653_914_096_789);
        assert_eq!(format_utc(t), "2022-05-30T12:34:56.789Z");
        // A leap-year day.
        let t = UNIX_EPOCH + Duration::from_secs(951_836_400); // 2000-02-29T15:00:00Z
        assert_eq!(format_utc(t), "2000-02-29T15:00:00.000Z");
    }

    #[test]
    fn filter_respects_the_global_level() {
        let prev = level();
        set_level(LogLevel::Warn);
        assert!(enabled(LogLevel::Error));
        assert!(enabled(LogLevel::Warn));
        assert!(!enabled(LogLevel::Info));
        set_level(prev);
    }
}
