//! A minimal leveled logger: `2026-08-08T12:00:00.123Z INFO  [service]
//! message` on stderr, with a process-global level. No timestamps
//! crates, no formatting on suppressed lines (the level check happens in
//! the macros before arguments are evaluated).
//!
//! Two output formats, selected process-globally with [`set_format`]:
//! human-readable text (default) and **JSON lines** — one structured
//! object per line (`ts`, `level`, `component`, `msg`, and `request_id`
//! when a [`request_scope`] is active on the emitting thread) for log
//! aggregation pipelines.
//!
//! ```
//! use bisched_obs::log::LogLevel;
//! bisched_obs::log::set_level(LogLevel::Debug);
//! bisched_obs::info!("doctest", "served {} requests", 12);
//! bisched_obs::debug!("doctest", "cache key = {:x}", 0xf00du32);
//! {
//!     let _scope = bisched_obs::log::request_scope(42);
//!     assert_eq!(bisched_obs::log::current_request_id(), Some(42));
//!     bisched_obs::info!("doctest", "this line carries request_id 42");
//! }
//! assert_eq!(bisched_obs::log::current_request_id(), None);
//! ```

use std::cell::Cell;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severities, most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LogLevel {
    /// The service cannot do what was asked.
    Error = 0,
    /// Degraded but proceeding.
    Warn = 1,
    /// Life-cycle events (the default level).
    Info = 2,
    /// Per-request detail.
    Debug = 3,
    /// Everything, including hot-path chatter.
    Trace = 4,
}

impl LogLevel {
    /// Fixed-width tag used in the text output line.
    pub fn tag(self) -> &'static str {
        match self {
            LogLevel::Error => "ERROR",
            LogLevel::Warn => "WARN ",
            LogLevel::Info => "INFO ",
            LogLevel::Debug => "DEBUG",
            LogLevel::Trace => "TRACE",
        }
    }

    /// Lowercase name used in the JSON output (`"level":"info"`).
    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
            LogLevel::Trace => "trace",
        }
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag().trim_end())
    }
}

impl std::str::FromStr for LogLevel {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(LogLevel::Error),
            "warn" | "warning" => Ok(LogLevel::Warn),
            "info" => Ok(LogLevel::Info),
            "debug" => Ok(LogLevel::Debug),
            "trace" => Ok(LogLevel::Trace),
            other => Err(format!(
                "unknown log level '{other}' (expected error|warn|info|debug|trace)"
            )),
        }
    }
}

/// How log lines are rendered; see [`set_format`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// `2026-08-08T12:00:00.123Z INFO  [service] message` (the default).
    #[default]
    Text,
    /// One JSON object per line:
    /// `{"ts":"...","level":"info","component":"service","msg":"...",
    /// "request_id":7}` (the `request_id` field appears only inside a
    /// [`request_scope`]).
    Json,
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);
static FORMAT: AtomicU8 = AtomicU8::new(0); // 0 = Text, 1 = Json

/// Sets the process-global log level.
pub fn set_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Sets the process-global output format.
pub fn set_format(format: LogFormat) {
    FORMAT.store(
        match format {
            LogFormat::Text => 0,
            LogFormat::Json => 1,
        },
        Ordering::Relaxed,
    );
}

/// The current process-global output format.
pub fn format() -> LogFormat {
    match FORMAT.load(Ordering::Relaxed) {
        0 => LogFormat::Text,
        _ => LogFormat::Json,
    }
}

thread_local! {
    /// The request id log lines on this thread are attributed to, when a
    /// [`request_scope`] is active.
    static REQUEST_ID: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Attributes every log line emitted on this thread to `id` until the
/// returned guard drops (scopes nest; the outer id is restored). The
/// service enters a scope per request so its log lines — and anything
/// the engines log beneath — carry the request id in both formats.
pub fn request_scope(id: u64) -> RequestIdGuard {
    let prev = REQUEST_ID.with(|slot| slot.replace(Some(id)));
    RequestIdGuard { prev }
}

/// The request id attributed to this thread's log lines, if any.
pub fn current_request_id() -> Option<u64> {
    REQUEST_ID.with(|slot| slot.get())
}

/// Restores the previous request-id scope on drop; see [`request_scope`].
#[must_use = "the request scope ends when this guard drops"]
pub struct RequestIdGuard {
    prev: Option<u64>,
}

impl Drop for RequestIdGuard {
    fn drop(&mut self) {
        REQUEST_ID.with(|slot| slot.set(self.prev));
    }
}

/// The current process-global log level.
pub fn level() -> LogLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => LogLevel::Error,
        1 => LogLevel::Warn,
        2 => LogLevel::Info,
        3 => LogLevel::Debug,
        _ => LogLevel::Trace,
    }
}

/// Would a line at `l` be emitted right now? The macros call this before
/// evaluating their format arguments.
#[inline]
pub fn enabled(l: LogLevel) -> bool {
    (l as u8) <= LEVEL.load(Ordering::Relaxed)
}

/// Renders a UNIX timestamp as UTC `YYYY-MM-DDTHH:MM:SS.mmmZ` with the
/// standard days-from-civil inversion — no date-time dependency.
fn format_utc(now: SystemTime) -> String {
    let d = now.duration_since(UNIX_EPOCH).unwrap_or_default();
    let secs = d.as_secs();
    let millis = d.subsec_millis();
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (hh, mm, ss) = (rem / 3600, (rem / 60) % 60, rem % 60);
    // civil-from-days (Howard Hinnant's algorithm), valid for the era
    // we care about.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{day:02}T{hh:02}:{mm:02}:{ss:02}.{millis:03}Z")
}

/// Renders one log line (without trailing newline) in the given format —
/// the pure core of [`log`], separated so tests can pin both formats
/// without capturing stderr.
fn render(
    fmt_mode: LogFormat,
    ts: SystemTime,
    level: LogLevel,
    component: &str,
    request_id: Option<u64>,
    args: fmt::Arguments<'_>,
) -> String {
    match fmt_mode {
        LogFormat::Text => match request_id {
            Some(rid) => format!(
                "{} {} [{component}] [rid={rid}] {args}",
                format_utc(ts),
                level.tag()
            ),
            None => format!("{} {} [{component}] {args}", format_utc(ts), level.tag()),
        },
        LogFormat::Json => {
            let mut out = String::with_capacity(96);
            out.push_str("{\"ts\":\"");
            out.push_str(&format_utc(ts));
            out.push_str("\",\"level\":\"");
            out.push_str(level.name());
            out.push_str("\",\"component\":\"");
            crate::trace::escape_into(&mut out, component);
            out.push_str("\",\"msg\":\"");
            let msg = args
                .as_str()
                .map(str::to_owned)
                .unwrap_or_else(|| args.to_string());
            crate::trace::escape_into(&mut out, &msg);
            out.push('"');
            if let Some(rid) = request_id {
                let _ = write!(out, ",\"request_id\":{rid}");
            }
            out.push('}');
            out
        }
    }
}

/// Writes one line to stderr if `level` passes the global filter. Prefer
/// the [`error!`](crate::error), [`warn!`](crate::warn),
/// [`info!`](crate::info), [`debug!`](crate::debug), and
/// [`trace!`](crate::trace) macros, which skip argument evaluation for
/// suppressed lines.
pub fn log(level: LogLevel, component: &str, args: fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let line = render(
        format(),
        SystemTime::now(),
        level,
        component,
        current_request_id(),
        args,
    );
    eprintln!("{line}");
}

/// Logs at [`LogLevel::Error`].
#[macro_export]
macro_rules! error {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Error) {
            $crate::log::log($crate::log::LogLevel::Error, $component, format_args!($($arg)*));
        }
    };
}

/// Logs at [`LogLevel::Warn`].
#[macro_export]
macro_rules! warn {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Warn) {
            $crate::log::log($crate::log::LogLevel::Warn, $component, format_args!($($arg)*));
        }
    };
}

/// Logs at [`LogLevel::Info`].
#[macro_export]
macro_rules! info {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Info) {
            $crate::log::log($crate::log::LogLevel::Info, $component, format_args!($($arg)*));
        }
    };
}

/// Logs at [`LogLevel::Debug`].
#[macro_export]
macro_rules! debug {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Debug) {
            $crate::log::log($crate::log::LogLevel::Debug, $component, format_args!($($arg)*));
        }
    };
}

/// Logs at [`LogLevel::Trace`].
#[macro_export]
macro_rules! trace {
    ($component:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::LogLevel::Trace) {
            $crate::log::log($crate::log::LogLevel::Trace, $component, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn levels_parse_and_order() {
        assert!(LogLevel::Error < LogLevel::Trace);
        assert_eq!("warn".parse::<LogLevel>().unwrap(), LogLevel::Warn);
        assert_eq!("DEBUG".parse::<LogLevel>().unwrap(), LogLevel::Debug);
        assert!("loud".parse::<LogLevel>().is_err());
    }

    #[test]
    fn utc_formatting_matches_known_instants() {
        let t = UNIX_EPOCH + Duration::from_millis(0);
        assert_eq!(format_utc(t), "1970-01-01T00:00:00.000Z");
        // 2022-05-30 12:34:56.789 UTC (IPPS 2022 week).
        let t = UNIX_EPOCH + Duration::from_millis(1_653_914_096_789);
        assert_eq!(format_utc(t), "2022-05-30T12:34:56.789Z");
        // A leap-year day.
        let t = UNIX_EPOCH + Duration::from_secs(951_836_400); // 2000-02-29T15:00:00Z
        assert_eq!(format_utc(t), "2000-02-29T15:00:00.000Z");
    }

    #[test]
    fn filter_respects_the_global_level() {
        let prev = level();
        set_level(LogLevel::Warn);
        assert!(enabled(LogLevel::Error));
        assert!(enabled(LogLevel::Warn));
        assert!(!enabled(LogLevel::Info));
        set_level(prev);
    }

    #[test]
    fn request_scopes_nest_and_restore() {
        assert_eq!(current_request_id(), None);
        {
            let _outer = request_scope(7);
            assert_eq!(current_request_id(), Some(7));
            {
                let _inner = request_scope(8);
                assert_eq!(current_request_id(), Some(8));
            }
            assert_eq!(current_request_id(), Some(7));
        }
        assert_eq!(current_request_id(), None);
    }

    #[test]
    fn text_render_includes_rid_only_in_scope() {
        let t = UNIX_EPOCH + Duration::from_millis(1_653_914_096_789);
        let plain = render(
            LogFormat::Text,
            t,
            LogLevel::Info,
            "service",
            None,
            format_args!("hello"),
        );
        assert_eq!(plain, "2022-05-30T12:34:56.789Z INFO  [service] hello");
        let scoped = render(
            LogFormat::Text,
            t,
            LogLevel::Warn,
            "service",
            Some(42),
            format_args!("slow"),
        );
        assert_eq!(
            scoped,
            "2022-05-30T12:34:56.789Z WARN  [service] [rid=42] slow"
        );
    }

    #[test]
    fn json_render_is_one_escaped_object_per_line() {
        let t = UNIX_EPOCH + Duration::from_millis(1_653_914_096_789);
        let line = render(
            LogFormat::Json,
            t,
            LogLevel::Error,
            "ser\"vice",
            Some(9),
            format_args!("bad \"input\"\nline2"),
        );
        assert_eq!(
            line,
            "{\"ts\":\"2022-05-30T12:34:56.789Z\",\"level\":\"error\",\
             \"component\":\"ser\\\"vice\",\"msg\":\"bad \\\"input\\\"\\nline2\",\
             \"request_id\":9}"
        );
        assert!(!line.contains('\n'));
        let no_rid = render(
            LogFormat::Json,
            t,
            LogLevel::Info,
            "c",
            None,
            format_args!("m"),
        );
        assert!(!no_rid.contains("request_id"));
        assert!(no_rid.ends_with("\"msg\":\"m\"}"));
    }

    #[test]
    fn format_toggle_round_trips() {
        let prev = format();
        set_format(LogFormat::Json);
        assert_eq!(format(), LogFormat::Json);
        set_format(LogFormat::Text);
        assert_eq!(format(), LogFormat::Text);
        set_format(prev);
    }
}
