//! Model-checked protocol suite for `bisched_exact::SearchCtl` — the
//! cross-engine incumbent bound + cancellation flag every portfolio
//! race shares (compiled only under `RUSTFLAGS="--cfg bisched_model"`;
//! plain `cargo test` skips the file).
//!
//! The real type is used, not a mirror: under `bisched_model` its
//! atomics are the instrumented facade, so every load/store/fetch_min
//! below is a scheduling point and the suite explores the complete
//! interleaving space at the default preemption bound (asserted via
//! `report.complete`).
//!
//! Invariants pinned here, matching the race logic in
//! `crates/core/src/solver/mod.rs` (`solve_race` / `race_member`):
//!
//! * the bound exchange is monotone: `foreign_bound()` never increases,
//!   and settles at the round-up of the minimum published makespan;
//! * publish-rounds-up / prune-rounds-down never prunes a subtree that
//!   could still beat the winner — in particular never the true optimum;
//! * first-proven-winner cancellation: a heuristic result is never
//!   certified `Optimal`, and a mid-run-cancelled engine never supplies
//!   the certificate;
//! * regression corpus: replacing the `fetch_min` publish with a
//!   load-then-store MUST be caught as a lost update — otherwise the
//!   checker has gone blind.

#![cfg(bisched_model)]

use bisched_exact::search_ctl::{rat_to_f64_down, rat_to_f64_up};
use bisched_exact::SearchCtl;
use bisched_model::Rat;
use bisched_obs::model::{self, Options};
use bisched_obs::sync::{AtomicU64, Mutex, Ordering};
use std::sync::Arc;

#[test]
fn bound_exchange_is_monotone_nonincreasing() {
    let report = model::check("searchctl_monotone", Options::default(), || {
        let ctl = Arc::new(SearchCtl::new());
        let a = {
            let ctl = Arc::clone(&ctl);
            model::spawn(move || {
                ctl.publish_makespan(&Rat::new(10, 1));
                ctl.publish_makespan(&Rat::new(7, 2)); // 3.5
            })
        };
        let b = {
            let ctl = Arc::clone(&ctl);
            model::spawn(move || {
                ctl.publish_makespan(&Rat::new(10, 3)); // 3.33…, the minimum
            })
        };
        // Concurrent sampler: the bound must only ever tighten.
        let s1 = ctl.foreign_bound();
        let s2 = ctl.foreign_bound();
        assert!(s2 <= s1, "bound went back up: {s1} then {s2}");
        a.join();
        b.join();
        let settled = ctl.foreign_bound();
        assert!(settled <= s2, "bound rose after joins: {s2} then {settled}");
        let expected = rat_to_f64_up(&Rat::new(10, 3));
        assert_eq!(
            settled, expected,
            "settled bound must be the round-up of the minimum published makespan"
        );
        assert!(
            settled >= 10.0 / 3.0,
            "round-up must not undershoot the exact value"
        );
    });
    assert!(report.complete, "exploration was budget-cut: {report:?}");
    assert!(report.schedules > 1, "scheduler found no concurrency");
}

#[test]
fn pruning_never_kills_a_subtree_below_the_winner() {
    let report = model::check("searchctl_prune_sound", Options::default(), || {
        let ctl = Arc::new(SearchCtl::new());
        let publishers: Vec<_> = [Rat::new(7, 2), Rat::new(10, 3)]
            .into_iter()
            .map(|mk| {
                let ctl = Arc::clone(&ctl);
                model::spawn(move || ctl.publish_makespan(&mk))
            })
            .collect();
        // The winner's makespan will be 10/3; a subtree with exact lower
        // bound 3 (< 10/3) can still improve on it, so it must survive
        // at every point of every interleaving.
        let optimum_lb = Rat::new(3, 1);
        assert!(!ctl.prunes(&optimum_lb), "pruned below the winner mid-race");
        for p in publishers {
            p.join();
        }
        assert!(
            !ctl.prunes(&optimum_lb),
            "pruned below the winner after the race settled"
        );
        // Sanity on the other side: once both makespans are in, a lower
        // bound that cannot beat the winner (4 > 3.5 > 10/3) does prune.
        assert!(ctl.prunes(&Rat::new(4, 1)), "pruning never engaged");
        // Edge: a zero lower bound is never prunable while any finite
        // bound is positive.
        assert!(!ctl.prunes(&Rat::new(0, 1)));
    });
    assert!(report.complete, "exploration was budget-cut: {report:?}");
}

/// One mirrored race member, matching `race_member` in
/// `crates/core/src/solver/mod.rs`: skip when already cancelled,
/// otherwise search the candidate list under shared-bound pruning,
/// publish the result, and cancel the race on a proven optimum.
struct MemberResult {
    name: &'static str,
    makespan: Option<u64>,
    optimal: bool,
    cancelled: bool,
}

fn run_member(
    name: &'static str,
    candidates: &[u64],
    exhaustive: bool,
    ctl: &SearchCtl,
) -> MemberResult {
    if ctl.cancelled() {
        return MemberResult {
            name,
            makespan: None,
            optimal: false,
            cancelled: true,
        };
    }
    let mut best: Option<u64> = None;
    let mut complete = true;
    for &c in candidates {
        if ctl.cancelled() {
            // Mid-run cancellation: keep the incumbent, drop the proof —
            // exactly what a budget-cut branch-and-bound reports.
            complete = false;
            break;
        }
        let lb = Rat::new(c, 1);
        if ctl.prunes(&lb) {
            // Shared-bound pruning stays part of a complete proof (see
            // the soundness argument in bisched_exact::search_ctl).
            continue;
        }
        if best.map_or(true, |b| c < b) {
            best = Some(c);
        }
    }
    if let Some(mk) = best {
        ctl.publish_makespan(&Rat::new(mk, 1));
    }
    let optimal = exhaustive && complete && best.is_some();
    if optimal {
        ctl.cancel();
    }
    MemberResult {
        name,
        makespan: best,
        optimal,
        cancelled: !complete,
    }
}

/// Mirror of `solve_race`'s winner selection + certification: the
/// winner is the smallest achieved makespan; the race's `Optimal` badge
/// requires some member's *completed* proof.
fn certify(results: &[MemberResult]) -> (Option<u64>, bool) {
    let winner = results.iter().filter_map(|r| r.makespan).min();
    let certified = winner.is_some()
        && results
            .iter()
            .any(|r| r.makespan.is_some() && r.optimal && !r.cancelled);
    (winner, certified)
}

#[test]
fn heuristic_is_never_certified_optimal() {
    let report = model::check("searchctl_no_false_optimal", Options::default(), || {
        let ctl = Arc::new(SearchCtl::new());
        let results: Arc<Mutex<Vec<MemberResult>>> = Arc::new(Mutex::new(Vec::new()));

        // A: a heuristic — achieves 4, proves nothing, never cancels.
        let a = {
            let (ctl, results) = (Arc::clone(&ctl), Arc::clone(&results));
            model::spawn(move || {
                if ctl.cancelled() {
                    results.lock().unwrap().push(MemberResult {
                        name: "heuristic",
                        makespan: None,
                        optimal: false,
                        cancelled: true,
                    });
                    return;
                }
                ctl.publish_makespan(&Rat::new(4, 1));
                results.lock().unwrap().push(MemberResult {
                    name: "heuristic",
                    makespan: Some(4),
                    optimal: false,
                    cancelled: false,
                });
            })
        };
        // B: an exhaustive search over {4, 3}; the true optimum is 3.
        let b = {
            let (ctl, results) = (Arc::clone(&ctl), Arc::clone(&results));
            model::spawn(move || {
                let r = run_member("exact", &[4, 3], true, &ctl);
                results.lock().unwrap().push(r);
            })
        };
        a.join();
        b.join();

        let results = results.lock().unwrap();
        let (winner, certified) = certify(&results);
        // B never gets skipped (A never cancels), pruning is
        // conservative, so the true optimum always survives:
        assert_eq!(winner, Some(3), "the race lost the true optimum");
        for r in results.iter() {
            if r.name == "heuristic" {
                assert!(!r.optimal, "a heuristic claimed a proof");
            }
        }
        if certified {
            // The certificate must come from the completed exact search,
            // certifying the winner's makespan 3 — never A's 4.
            assert_eq!(winner, Some(3));
        }
    });
    assert!(report.complete, "exploration was budget-cut: {report:?}");
}

#[test]
fn cancelled_member_never_supplies_the_certificate() {
    let report = model::check("searchctl_cancelled_no_cert", Options::default(), || {
        let ctl = Arc::new(SearchCtl::new());
        let results: Arc<Mutex<Vec<MemberResult>>> = Arc::new(Mutex::new(Vec::new()));
        // B: fast exhaustive search — proves 3 optimal, cancels the race.
        let b = {
            let (ctl, results) = (Arc::clone(&ctl), Arc::clone(&results));
            model::spawn(move || {
                let r = run_member("fast_exact", &[3], true, &ctl);
                results.lock().unwrap().push(r);
            })
        };
        // C: slow exhaustive search racing the cancellation.
        let c = {
            let (ctl, results) = (Arc::clone(&ctl), Arc::clone(&results));
            model::spawn(move || {
                let r = run_member("slow_exact", &[4, 3], true, &ctl);
                results.lock().unwrap().push(r);
            })
        };
        b.join();
        c.join();

        let results = results.lock().unwrap();
        for r in results.iter() {
            if r.cancelled {
                assert!(
                    !r.optimal,
                    "member {} was cancelled mid-run yet claims a completed proof",
                    r.name
                );
            }
        }
        let (winner, certified) = certify(&results);
        assert_eq!(winner, Some(3), "the race lost the true optimum");
        assert!(
            certified,
            "B's completed proof must certify the winner in every interleaving"
        );
    });
    assert!(report.complete, "exploration was budget-cut: {report:?}");
}

/// Regression corpus: a publish implemented as load-then-store (instead
/// of `fetch_min`) loses concurrent updates; the checker must find the
/// interleaving where the settled bound is above the minimum published
/// makespan.
#[test]
fn mutation_load_store_publish_is_caught() {
    let violation =
        model::check_expect_violation("searchctl_lost_update", Options::default(), || {
            struct WeakCtl {
                bound: AtomicU64,
            }
            impl WeakCtl {
                fn publish(&self, mk: &Rat) {
                    // The seeded bug: a non-atomic read-modify-write.
                    let new = rat_to_f64_up(mk).to_bits();
                    let cur = self.bound.load(Ordering::Relaxed);
                    if new < cur {
                        self.bound.store(new, Ordering::Relaxed);
                    }
                }
            }
            let ctl = Arc::new(WeakCtl {
                bound: AtomicU64::new(f64::INFINITY.to_bits()),
            });
            let a = {
                let ctl = Arc::clone(&ctl);
                model::spawn(move || ctl.publish(&Rat::new(3, 1)))
            };
            let b = {
                let ctl = Arc::clone(&ctl);
                model::spawn(move || ctl.publish(&Rat::new(2, 1)))
            };
            a.join();
            b.join();
            let settled = f64::from_bits(ctl.bound.load(Ordering::Relaxed));
            assert!(
                settled <= rat_to_f64_up(&Rat::new(2, 1)),
                "lost update: settled bound {settled} is above the minimum published makespan"
            );
        });
    assert!(
        violation.message.contains("lost update"),
        "expected the lost-update assertion, got: {}",
        violation.message
    );
}

/// The directed roundings bracket the exact value even at the edges the
/// race actually hits (zero and the `fetch_min` identity `+inf` bit
/// pattern) — checked here so a rounding regression fails the model
/// suite too, not just the proptests.
#[test]
fn rounding_brackets_are_sound_at_the_edges() {
    let zero = Rat::new(0, 1);
    assert!(rat_to_f64_down(&zero) <= 0.0 && 0.0 <= rat_to_f64_up(&zero));
    assert!(rat_to_f64_down(&zero).is_sign_positive() || rat_to_f64_down(&zero) == 0.0);
    let big = Rat::new(u64::MAX, 1);
    assert!(rat_to_f64_up(&big) >= u64::MAX as f64);
    assert!(rat_to_f64_up(&big).is_finite());
    // The fetch_min identity: +inf bits compare above every published
    // nonnegative bound, so "no bound yet" loses to any real makespan.
    assert!(f64::INFINITY.to_bits() > rat_to_f64_up(&big).to_bits());
}
