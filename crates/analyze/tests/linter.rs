//! Integration tests: the linter is clean on the real workspace and the
//! seeded-mutation self-check catches every planted violation. These run
//! in plain `cargo test`, so a PR that breaks a cross-cutting invariant
//! fails the ordinary test suite even before the dedicated CI job.

#![forbid(unsafe_code)]

use bisched_analyze::{find_workspace_root, run_all, self_check, Sources};
use std::path::Path;

fn root() -> std::path::PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above CARGO_MANIFEST_DIR")
}

#[test]
fn workspace_is_clean() {
    let findings = run_all(&Sources::new(root())).expect("tree analyzable");
    assert!(
        findings.is_empty(),
        "workspace has invariant violations:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn self_check_catches_every_seeded_mutation() {
    let results = self_check(&root()).expect("self-check ran");
    assert!(results.len() >= 6, "expected >= 6 seeded mutations");
    for r in &results {
        assert!(
            r.caught,
            "lint went blind on: {} — {}",
            r.mutation, r.detail
        );
    }
}

/// The lints must also fire on *synthetic* trees, not just the seeded
/// mutations — guards against the checks accidentally keying on
/// incidental formatting of today's sources.
#[test]
fn cache_key_lint_rejects_destructure_only_coverage() {
    let real = Sources::new(root());
    // A field that only appears in the exhaustive destructure (and a
    // `let _ =` discard) is NOT encoded; the lint must say so.
    let server = real.read("crates/service/src/server.rs").unwrap();
    let mutated: String = server
        .lines()
        .filter(|l| !l.contains("auto_exact_jobs as u64"))
        .map(|l| {
            if l.trim_start().starts_with("let _ = fptas_parallel;") {
                "    let _ = fptas_parallel;\n    let _ = auto_exact_jobs;".to_string()
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    let src = Sources {
        root: root(),
        overrides: vec![("crates/service/src/server.rs".into(), mutated)],
    };
    let findings = run_all(&src).expect("analyzable");
    assert!(
        findings
            .iter()
            .any(|f| f.lint == "cache-key-fields" && f.message.contains("auto_exact_jobs")),
        "destructure + discard must not count as encoding; findings: {findings:?}"
    );
}

#[test]
fn method_lint_rejects_variant_missing_from_all() {
    let real = Sources::new(root());
    let method = real.read("crates/core/src/solver/method.rs").unwrap();
    // Remove GreedyR from the ALL list only (keep the name() arm).
    let mutated = method.replacen("Method::GreedyR,", "", 1);
    assert_ne!(mutated, method, "expected Method::GreedyR, in ALL");
    let src = Sources {
        root: root(),
        overrides: vec![("crates/core/src/solver/method.rs".into(), mutated)],
    };
    let findings = run_all(&src).expect("analyzable");
    assert!(
        findings
            .iter()
            .any(|f| f.lint == "method-coverage" && f.message.contains("GreedyR")),
        "variant missing from ALL must be flagged; findings: {findings:?}"
    );
}

#[test]
fn stale_allowlist_entry_is_flagged() {
    let real = Sources::new(root());
    let server = real.read("crates/service/src/server.rs").unwrap();
    // The allowlist tuple is the file's first `"fptas_parallel"` literal.
    let mutated = server.replacen("\"fptas_parallel\",", "\"no_such_field\",", 1);
    assert_ne!(mutated, server, "expected an allowlist entry to rename");
    let src = Sources {
        root: root(),
        overrides: vec![("crates/service/src/server.rs".into(), mutated)],
    };
    let findings = run_all(&src).expect("analyzable");
    assert!(
        findings
            .iter()
            .any(|f| f.lint == "cache-key-fields" && f.message.contains("no_such_field")),
        "allowlist entries must name real fields; findings: {findings:?}"
    );
}
