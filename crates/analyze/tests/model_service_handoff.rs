//! Model-checked suite for the service's queue/LRU handoff (compiled
//! only under `RUSTFLAGS="--cfg bisched_model"`).
//!
//! The protocol under test lives in `crates/service/src/server.rs` and
//! `worker.rs`: requests check `shutting_down` (SeqCst), probe the
//! shared `Mutex<LruCache>`, and on a miss enqueue **under the queue
//! mutex** into a bounded channel; shutdown swaps the flag and closes
//! the queue under that same mutex; workers drain whatever was accepted
//! before the close ("no accepted job is dropped" — worker.rs docs).
//! The channel is mirrored as `Mutex<Chan { open, buf }>` (same lock
//! discipline: sends and the close serialize on one mutex; buffered
//! jobs stay drainable after the close), the cache is the **real**
//! `bisched_service::LruCache` behind the facade mutex.
//!
//! Invariants explored over the complete interleaving space:
//!
//! * the accept/close race never loses or duplicates an accepted job,
//!   and never accepts after the close;
//! * the bounded queue's busy accounting is exact (`accepted + busy ==
//!   submitted`);
//! * concurrent duplicate-miss inserts and a racing reader stay
//!   consistent: the reader only ever sees a fully built report for the
//!   right key, and `len <= cap` holds through every eviction
//!   interleaving.

#![cfg(bisched_model)]

use bisched_graph::Graph;
use bisched_model::Instance;
use bisched_obs::model::{self, Options};
use bisched_obs::sync::{AtomicBool, Mutex, Ordering};
use bisched_service::LruCache;
use std::sync::Arc;

/// Mirror of the `Mutex<Option<SyncSender<Job>>>` + channel-buffer pair.
struct Chan {
    open: bool,
    buf: Vec<u64>,
}

struct Handoff {
    shutting_down: AtomicBool,
    chan: Mutex<Chan>,
    cap: usize,
}

#[derive(Debug, PartialEq, Eq)]
enum Submit {
    Accepted,
    Busy,
    Refused,
}

impl Handoff {
    fn new(cap: usize) -> Self {
        Handoff {
            shutting_down: AtomicBool::new(false),
            chan: Mutex::new(Chan {
                open: true,
                buf: Vec::new(),
            }),
            cap,
        }
    }

    /// Mirror of the request path's enqueue step (`solve_in`).
    fn submit(&self, job: u64) -> Submit {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Submit::Refused;
        }
        let mut chan = self.chan.lock().unwrap();
        if !chan.open {
            return Submit::Refused; // tx dropped: Err(None) in the real code
        }
        if chan.buf.len() >= self.cap {
            return Submit::Busy; // TrySendError::Full
        }
        chan.buf.push(job);
        Submit::Accepted
    }

    /// Mirror of `Service::shutdown`: flag first, then close the queue
    /// under its mutex.
    fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.chan.lock().unwrap().open = false;
    }

    /// Mirror of a worker draining after the close: buffered jobs are
    /// still received (`recv` keeps returning until empty+closed).
    fn drain(&self) -> Vec<u64> {
        let mut chan = self.chan.lock().unwrap();
        assert!(!chan.open, "drain models the post-close worker exit path");
        std::mem::take(&mut chan.buf)
    }
}

#[test]
fn shutdown_race_loses_no_accepted_job() {
    let report = model::check("handoff_shutdown", Options::default(), || {
        let h = Arc::new(Handoff::new(8));
        let outcomes: Arc<Mutex<Vec<(u64, Submit)>>> = Arc::new(Mutex::new(Vec::new()));
        let producers: Vec<_> = [1u64, 2]
            .into_iter()
            .map(|job| {
                let (h, outcomes) = (Arc::clone(&h), Arc::clone(&outcomes));
                model::spawn(move || {
                    let r = h.submit(job);
                    outcomes.lock().unwrap().push((job, r));
                })
            })
            .collect();
        let closer = {
            let h = Arc::clone(&h);
            model::spawn(move || h.shutdown())
        };
        for p in producers {
            p.join();
        }
        closer.join();

        let drained = h.drain();
        let outcomes = outcomes.lock().unwrap();
        let mut accepted: Vec<u64> = outcomes
            .iter()
            .filter(|(_, r)| *r == Submit::Accepted)
            .map(|(j, _)| *j)
            .collect();
        accepted.sort_unstable();
        let mut got = drained.clone();
        got.sort_unstable();
        assert_eq!(
            got, accepted,
            "accepted jobs and the post-close drain must agree exactly \
             (lost or phantom job across the shutdown race)"
        );
        for (job, r) in outcomes.iter() {
            if *r != Submit::Accepted {
                assert!(
                    !drained.contains(job),
                    "job {job} was refused yet sits in the queue"
                );
            }
        }
    });
    assert!(report.complete, "exploration was budget-cut: {report:?}");
    assert!(report.schedules > 1, "scheduler found no concurrency");
}

#[test]
fn bounded_queue_busy_accounting_is_exact() {
    let report = model::check("handoff_busy", Options::default(), || {
        let h = Arc::new(Handoff::new(1));
        let outcomes: Arc<Mutex<Vec<Submit>>> = Arc::new(Mutex::new(Vec::new()));
        let producers: Vec<_> = [10u64, 11]
            .into_iter()
            .map(|job| {
                let (h, outcomes) = (Arc::clone(&h), Arc::clone(&outcomes));
                model::spawn(move || {
                    let r = h.submit(job);
                    outcomes.lock().unwrap().push(r);
                })
            })
            .collect();
        for p in producers {
            p.join();
        }
        let outcomes = outcomes.lock().unwrap();
        let accepted = outcomes.iter().filter(|r| **r == Submit::Accepted).count();
        let busy = outcomes.iter().filter(|r| **r == Submit::Busy).count();
        // No shutdown in flight: nothing may be refused, and with cap 1
        // and 2 submissions exactly one lands and exactly one bounces.
        assert_eq!(accepted + busy, 2, "a submission vanished");
        assert_eq!(accepted, 1, "bounded queue admitted {accepted} of cap 1");
        assert!(
            h.chan.lock().unwrap().buf.len() <= 1,
            "queue above its bound"
        );
    });
    assert!(report.complete, "exploration was budget-cut: {report:?}");
}

/// Mirror of the sharded front end: one global `shutting_down` flag,
/// one `Mutex<Chan>` per shard (the per-shard `Mutex<Option<SyncSender>>`
/// + bounded channel in `server.rs`); `Service::begin_shutdown` swaps
/// the flag once, then closes every shard's queue in index order.
struct ShardedHandoff {
    shutting_down: AtomicBool,
    shards: Vec<Mutex<Chan>>,
    cap: usize,
}

impl ShardedHandoff {
    fn new(shards: usize, cap: usize) -> Self {
        ShardedHandoff {
            shutting_down: AtomicBool::new(false),
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Chan {
                        open: true,
                        buf: Vec::new(),
                    })
                })
                .collect(),
            cap,
        }
    }

    /// Mirror of `handle_solve`: route, then enqueue on the owning
    /// shard only — no other shard's lock is touched.
    fn submit(&self, job: u64) -> Submit {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Submit::Refused;
        }
        let shard = (job % self.shards.len() as u64) as usize;
        let mut chan = self.shards[shard].lock().unwrap();
        if !chan.open {
            return Submit::Refused;
        }
        if chan.buf.len() >= self.cap {
            return Submit::Busy;
        }
        chan.buf.push(job);
        Submit::Accepted
    }

    /// Mirror of `Service::begin_shutdown`: flag first, then close each
    /// shard's queue under its own mutex, in index order.
    fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        for shard in &self.shards {
            shard.lock().unwrap().open = false;
        }
    }

    fn drain(&self, shard: usize) -> Vec<u64> {
        let mut chan = self.shards[shard].lock().unwrap();
        assert!(!chan.open, "drain models the post-close worker exit path");
        std::mem::take(&mut chan.buf)
    }
}

#[test]
fn per_shard_shutdown_loses_no_accepted_job_on_any_shard() {
    let report = model::check("handoff_shard_shutdown", Options::default(), || {
        let h = Arc::new(ShardedHandoff::new(2, 8));
        let outcomes: Arc<Mutex<Vec<(u64, Submit)>>> = Arc::new(Mutex::new(Vec::new()));
        // Jobs 20 and 21 route to shards 0 and 1 respectively, so the
        // closer races BOTH shards' queue closes against an in-flight
        // submit on each.
        let producers: Vec<_> = [20u64, 21]
            .into_iter()
            .map(|job| {
                let (h, outcomes) = (Arc::clone(&h), Arc::clone(&outcomes));
                model::spawn(move || {
                    let r = h.submit(job);
                    outcomes.lock().unwrap().push((job, r));
                })
            })
            .collect();
        let closer = {
            let h = Arc::clone(&h);
            model::spawn(move || h.shutdown())
        };
        for p in producers {
            p.join();
        }
        closer.join();

        let outcomes = outcomes.lock().unwrap();
        for shard in 0..2usize {
            let drained = h.drain(shard);
            let mut accepted: Vec<u64> = outcomes
                .iter()
                .filter(|(job, r)| (*job % 2) as usize == shard && *r == Submit::Accepted)
                .map(|(job, _)| *job)
                .collect();
            accepted.sort_unstable();
            let mut got = drained;
            got.sort_unstable();
            assert_eq!(
                got, accepted,
                "shard {shard}: accepted jobs and the post-close drain \
                 must agree exactly across the sharded shutdown race"
            );
        }
    });
    assert!(report.complete, "exploration was budget-cut: {report:?}");
    assert!(report.schedules > 1, "scheduler found no concurrency");
}

#[test]
fn shard_queues_bounce_independently_with_exact_accounting() {
    let report = model::check("handoff_shard_busy", Options::default(), || {
        // Cap 1 per shard: two jobs racing for shard 0, one for shard 1.
        // Shard 0's backpressure must bounce exactly one of its two
        // submissions and must not leak onto shard 1.
        let h = Arc::new(ShardedHandoff::new(2, 1));
        let outcomes: Arc<Mutex<Vec<(u64, Submit)>>> = Arc::new(Mutex::new(Vec::new()));
        let producers: Vec<_> = [30u64, 32, 31]
            .into_iter()
            .map(|job| {
                let (h, outcomes) = (Arc::clone(&h), Arc::clone(&outcomes));
                model::spawn(move || {
                    let r = h.submit(job);
                    outcomes.lock().unwrap().push((job, r));
                })
            })
            .collect();
        for p in producers {
            p.join();
        }
        let outcomes = outcomes.lock().unwrap();
        let count = |shard: u64, want: Submit| {
            outcomes
                .iter()
                .filter(|(job, r)| job % 2 == shard && *r == want)
                .count()
        };
        assert_eq!(
            (count(0, Submit::Accepted), count(0, Submit::Busy)),
            (1, 1),
            "shard 0: two submissions into cap 1 must split accept/busy exactly"
        );
        assert_eq!(
            (count(1, Submit::Accepted), count(1, Submit::Busy)),
            (1, 0),
            "shard 1: its queue is independent — shard 0's pressure must not bounce it"
        );
        for (shard, chan) in h.shards.iter().enumerate() {
            assert!(
                chan.lock().unwrap().buf.len() <= 1,
                "shard {shard} queue above its bound"
            );
        }
    });
    assert!(report.complete, "exploration was budget-cut: {report:?}");
}

fn report_for(p: u64) -> Arc<bisched_core::SolveReport> {
    let inst = Instance::identical(2, vec![p, 1], Graph::empty(2)).unwrap();
    Arc::new(bisched_core::Solver::new().solve(&inst).unwrap())
}

#[test]
fn duplicate_miss_inserts_and_reader_stay_consistent() {
    // Reports are built natively before the exploration starts; the
    // model threads only move Arcs.
    let r1 = report_for(7);
    let report = model::check("handoff_cache_dup", Options::default(), move || {
        let cache = Arc::new(Mutex::new(LruCache::new(2)));
        // Two workers race duplicate misses for the same fingerprint —
        // the service deliberately has no single-flight dedup
        // (worker.rs docs), so both insert; the second replaces in
        // place.
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let r = Arc::clone(&r1);
                model::spawn(move || {
                    cache.lock().unwrap().insert(1, vec![0xAB], r);
                })
            })
            .collect();
        // A racing reader: a hit must return the fully built report for
        // the right key (certificate check included), never a torn or
        // foreign value.
        {
            let mut cache = cache.lock().unwrap();
            if let Some(hit) = cache.get(1, &[0xAB]) {
                assert!(
                    Arc::ptr_eq(&hit, &r1),
                    "cache hit returned a report that was never inserted under key 1"
                );
            }
            assert!(
                cache.get(1, &[0xCD]).is_none(),
                "certificate mismatch must miss"
            );
        }
        for w in workers {
            w.join();
        }
        let mut cache = cache.lock().unwrap();
        assert_eq!(cache.len(), 1, "duplicate insert must replace in place");
        assert!(
            cache.get(1, &[0xAB]).is_some(),
            "post-join read must hit: both inserts happened-before the joins"
        );
    });
    assert!(report.complete, "exploration was budget-cut: {report:?}");
}

#[test]
fn eviction_interleavings_respect_the_capacity_bound() {
    let r1 = report_for(3);
    let r2 = report_for(5);
    let report = model::check("handoff_cache_evict", Options::default(), move || {
        let cache = Arc::new(Mutex::new(LruCache::new(1)));
        let inserters: Vec<_> = [(1u128, &r1), (2u128, &r2)]
            .into_iter()
            .map(|(key, r)| {
                let cache = Arc::clone(&cache);
                let r = Arc::clone(r);
                model::spawn(move || {
                    cache.lock().unwrap().insert(key, vec![key as u8], r);
                })
            })
            .collect();
        {
            let cache = cache.lock().unwrap();
            assert!(cache.len() <= 1, "cap-1 cache grew past its bound mid-race");
        }
        for i in inserters {
            i.join();
        }
        let mut cache = cache.lock().unwrap();
        assert_eq!(cache.len(), 1);
        // Exactly one of the two keys survived the eviction race; the
        // surviving entry must be internally consistent (key, cert, and
        // report all from the same insert).
        let hit1 = cache.get(1, &[1u8]).map(|r| Arc::ptr_eq(&r, &r1));
        let hit2 = cache.get(2, &[2u8]).map(|r| Arc::ptr_eq(&r, &r2));
        match (hit1, hit2) {
            (Some(true), None) | (None, Some(true)) => {}
            other => panic!("eviction race left an inconsistent cache: {other:?}"),
        }
    });
    assert!(report.complete, "exploration was budget-cut: {report:?}");
}
