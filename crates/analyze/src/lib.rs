//! # bisched-analyze — token-level workspace invariant linter
//!
//! A dependency-free static checker for the cross-cutting invariants
//! that rustc cannot see because they span files, crates, and docs:
//!
//! * **cache-key-fields** — every `SolverConfig` field is either folded
//!   into `config_cache_bytes` (the response-cache key) or listed in
//!   `CACHE_KEY_ALLOWLIST` with a written justification. A field that is
//!   merely destructured (or discarded via `let _ = field;`) does not
//!   count as encoded.
//! * **method-coverage** — every `Method` enum variant has a wire name
//!   in `name()`, appears in `Method::ALL` (which drives `FromStr`
//!   parsing and the per-method metrics label set), has a dispatch arm
//!   in `engines.rs`, and has its wire name documented in `PROTOCOL.md`.
//! * **safety-comments** — every `unsafe` block and `unsafe impl`
//!   carries a `// SAFETY:` comment (same contract clippy's
//!   `undocumented_unsafe_blocks` enforces, but applied token-level to
//!   *all* cfg branches, including `cfg(bisched_model)` code clippy
//!   never expands).
//! * **forbid-unsafe** — every workspace member declares
//!   `#![forbid(unsafe_code)]` and `[lints] workspace = true`, except
//!   the crates named in [`FORBID_UNSAFE_EXCEPTIONS`]; stale exceptions
//!   are themselves findings.
//! * **metric-registry** — every `bisched_*` metric name emitted by the
//!   service/bench layers is declared in `METRIC_NAMES`
//!   (`crates/service/src/metrics.rs`), and every
//!   `bisched_obs::span/span_arg/instant/counter` call site passes a
//!   string literal drawn from `EVENT_NAMES` (`crates/obs/src/names.rs`).
//!
//! ## Why token-level, not `syn`
//!
//! The workspace is offline and dependency-free; the linter must build
//! before anything else as CI's first gate. A small lossless-enough
//! lexer (comments and literals handled, brace depth tracked) is
//! sufficient for every check above, and `--self-check` (see
//! [`self_check`]) proves each lint actually fires by running the suite
//! against seeded in-memory mutations of the real tree.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates allowed to contain `unsafe` (and therefore exempt from the
/// `#![forbid(unsafe_code)]` requirement). This list *is* the analyzer
/// config: adding a crate here is a reviewed, diffable act.
pub const FORBID_UNSAFE_EXCEPTIONS: &[&str] = &[
    // The model-checked lock-free ring and the concurrency facade.
    "bisched-obs",
    // The counting global allocator behind exp_fptas_scaling.
    "bisched-bench",
];

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// One invariant violation: which lint, where, and what to do about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The lint's stable name (e.g. `cache-key-fields`).
    pub lint: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line the finding anchors to.
    pub line: usize,
    /// Human-readable description naming the violated invariant.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.lint, self.file, self.line, self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Sources: filesystem access with an override layer for --self-check
// ---------------------------------------------------------------------------

/// Read-only view of the workspace tree. `overrides` maps
/// workspace-relative paths (forward slashes) to replacement contents,
/// letting [`self_check`] lint mutated sources without touching disk.
pub struct Sources {
    /// Workspace root (the directory holding the `[workspace]` manifest).
    pub root: PathBuf,
    /// Relative path → replacement content.
    pub overrides: Vec<(String, String)>,
}

impl Sources {
    /// A plain view of the tree at `root` with no overrides.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Sources {
            root: root.into(),
            overrides: Vec::new(),
        }
    }

    /// Reads a workspace-relative file, honoring overrides.
    pub fn read(&self, rel: &str) -> Result<String, String> {
        if let Some((_, content)) = self.overrides.iter().find(|(p, _)| p == rel) {
            return Ok(content.clone());
        }
        fs::read_to_string(self.root.join(rel)).map_err(|e| format!("{rel}: {e}"))
    }

    /// All `.rs` files (workspace-relative, sorted) under `rel_dir`,
    /// skipping `target/` and VCS metadata.
    pub fn walk_rs(&self, rel_dir: &str) -> Vec<String> {
        let mut out = Vec::new();
        let base = self.root.join(rel_dir);
        walk(&base, &mut out);
        let mut rel: Vec<String> = out
            .iter()
            .filter_map(|p| {
                p.strip_prefix(&self.root)
                    .ok()
                    .map(|r| r.to_string_lossy().replace('\\', "/"))
            })
            .collect();
        rel.sort();
        rel
    }
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

/// A lexed token: identifier/keyword, string-literal contents, or a
/// single punctuation character. Comments, whitespace, numbers, char
/// literals, and lifetimes are consumed but not emitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// The contents of a string literal (escapes left as-is).
    Str(String),
    /// Any other single character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: usize,
    /// The token itself.
    pub tok: Tok,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}
fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes Rust-ish source into [`Token`]s. Robust to nested block
/// comments, raw strings (`r"…"`, `r#"…"#`, `br##"…"##`), escapes, char
/// literals, and lifetimes; everything the lints need, nothing more.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let n = b.len();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start_line = line;
                i += 1;
                let lit_start = i;
                while i < n {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => break,
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                let lit = String::from_utf8_lossy(&b[lit_start..i.min(n)]).into_owned();
                toks.push(Token {
                    line: start_line,
                    tok: Tok::Str(lit),
                });
                i += 1; // closing quote
            }
            b'\'' => {
                if i + 1 < n && b[i + 1] == b'\\' {
                    // Escaped char literal: scan to its closing quote.
                    i += 2;
                    while i < n && b[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                } else if i + 2 < n && b[i + 2] == b'\'' {
                    i += 3; // plain char literal 'x'
                } else {
                    i += 1; // lifetime tick; the ident lexes separately
                }
            }
            _ if c.is_ascii_digit() => {
                i += 1;
                while i < n && is_ident_cont(b[i]) {
                    i += 1;
                }
            }
            _ if is_ident_start(c) => {
                // Raw / byte string literals look like idents at first.
                if let Some((skip, lit, newlines)) = raw_string_at(&b[i..]) {
                    toks.push(Token {
                        line,
                        tok: Tok::Str(lit),
                    });
                    line += newlines;
                    i += skip;
                    continue;
                }
                let start = i;
                while i < n && is_ident_cont(b[i]) {
                    i += 1;
                }
                toks.push(Token {
                    line,
                    tok: Tok::Ident(String::from_utf8_lossy(&b[start..i]).into_owned()),
                });
            }
            _ if c.is_ascii_whitespace() => i += 1,
            _ => {
                toks.push(Token {
                    line,
                    tok: Tok::Punct(c as char),
                });
                i += 1;
            }
        }
    }
    toks
}

/// If `rest` begins a raw or byte string literal (`r"`, `r#"`, `br"`,
/// `b"`, …), returns `(bytes_consumed, contents, newlines_inside)`.
fn raw_string_at(rest: &[u8]) -> Option<(usize, String, usize)> {
    let mut j = 0usize;
    if rest.first() == Some(&b'b') {
        j += 1;
    }
    let raw = rest.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while raw && rest.get(j + hashes) == Some(&b'#') {
        hashes += 1;
    }
    j += hashes;
    if rest.get(j) != Some(&b'"') || (!raw && j == 0) {
        return None;
    }
    j += 1;
    let start = j;
    let n = rest.len();
    while j < n {
        if raw {
            if rest[j] == b'"'
                && rest[j + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&c| c == b'#')
                    .count()
                    == hashes
            {
                let lit = String::from_utf8_lossy(&rest[start..j]).into_owned();
                let newlines = lit.bytes().filter(|&c| c == b'\n').count();
                return Some((j + 1 + hashes, lit, newlines));
            }
            j += 1;
        } else {
            match rest[j] {
                b'\\' => j += 2,
                b'"' => {
                    let lit = String::from_utf8_lossy(&rest[start..j]).into_owned();
                    let newlines = lit.bytes().filter(|&c| c == b'\n').count();
                    return Some((j + 1, lit, newlines));
                }
                _ => j += 1,
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

fn is_ident(t: &Token, s: &str) -> bool {
    matches!(&t.tok, Tok::Ident(i) if i == s)
}
fn is_punct(t: &Token, c: char) -> bool {
    matches!(&t.tok, Tok::Punct(p) if *p == c)
}

/// Finds `kw name … { body }` and returns `(decl_line, body_tokens)`
/// with the outer braces excluded. `kw` is e.g. `fn`, `struct`, `enum`.
pub fn braced_item<'a>(toks: &'a [Token], kw: &str, name: &str) -> Option<(usize, &'a [Token])> {
    for i in 0..toks.len().saturating_sub(1) {
        if is_ident(&toks[i], kw) && is_ident(&toks[i + 1], name) {
            let mut j = i + 2;
            while j < toks.len() && !is_punct(&toks[j], '{') {
                // A `;`-terminated item (tuple struct, decl) has no body.
                if is_punct(&toks[j], ';') {
                    break;
                }
                j += 1;
            }
            if j >= toks.len() || !is_punct(&toks[j], '{') {
                continue;
            }
            let open = j;
            let mut depth = 0usize;
            while j < toks.len() {
                if is_punct(&toks[j], '{') {
                    depth += 1;
                } else if is_punct(&toks[j], '}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some((toks[i].line, &toks[open + 1..j]));
                    }
                }
                j += 1;
            }
        }
    }
    None
}

/// Finds `const NAME: … = [ … ]` (or `&[ … ]`) and returns
/// `(decl_line, body_tokens)` of the bracketed initializer.
pub fn const_array_body<'a>(toks: &'a [Token], name: &str) -> Option<(usize, &'a [Token])> {
    for i in 0..toks.len().saturating_sub(1) {
        if is_ident(&toks[i], "const") && is_ident(&toks[i + 1], name) {
            // Skip the type annotation: find `=` at bracket depth 0.
            let mut j = i + 2;
            let mut depth = 0isize;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('[' | '(' | '{') => depth += 1,
                    Tok::Punct(']' | ')' | '}') => depth -= 1,
                    Tok::Punct('=') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            // First `[` after `=` opens the initializer.
            while j < toks.len() && !is_punct(&toks[j], '[') {
                j += 1;
            }
            let open = j;
            let mut depth = 0usize;
            while j < toks.len() {
                if is_punct(&toks[j], '[') {
                    depth += 1;
                } else if is_punct(&toks[j], ']') {
                    depth -= 1;
                    if depth == 0 {
                        return Some((toks[i].line, &toks[open + 1..j]));
                    }
                }
                j += 1;
            }
        }
    }
    None
}

/// Field names of a struct body: `ident :` at brace/paren/bracket depth
/// 0, excluding path segments (`a::b`) and the `pub` keyword.
pub fn struct_fields(body: &[Token]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut depth = 0isize;
    for i in 0..body.len() {
        match &body[i].tok {
            Tok::Punct('{' | '(' | '[' | '<') => depth += 1,
            // Clamp at zero so a stray `>` (e.g. in `->`) cannot push
            // later fields out of visibility.
            Tok::Punct('}' | ')' | ']' | '>') => depth = (depth - 1).max(0),
            Tok::Ident(name) if depth == 0 => {
                let next_is_colon = body.get(i + 1).is_some_and(|t| is_punct(t, ':'));
                let next2_is_colon = body.get(i + 2).is_some_and(|t| is_punct(t, ':'));
                let prev_is_colon = i > 0 && is_punct(&body[i - 1], ':');
                if next_is_colon && !next2_is_colon && !prev_is_colon && name != "pub" {
                    out.push((body[i].line, name.clone()));
                }
            }
            _ => {}
        }
    }
    out
}

/// Variant names of an enum body: identifiers at depth 0 followed by
/// `,`, `(`, `{`, `=`, or the end of the body.
pub fn enum_variants(body: &[Token]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut depth = 0isize;
    for i in 0..body.len() {
        match &body[i].tok {
            Tok::Punct('{' | '(' | '[') => depth += 1,
            Tok::Punct('}' | ')' | ']') => depth -= 1,
            Tok::Ident(name) if depth == 0 => {
                let starts_upper = name.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                let follower_ok = matches!(
                    body.get(i + 1).map(|t| &t.tok),
                    None | Some(Tok::Punct(',' | '(' | '{' | '='))
                );
                if starts_upper && follower_ok {
                    out.push((body[i].line, name.clone()));
                }
            }
            _ => {}
        }
    }
    out
}

/// Does the stream contain the path `Qualifier::name`?
pub fn contains_path(toks: &[Token], qualifier: &str, name: &str) -> bool {
    toks.windows(4).any(|w| {
        is_ident(&w[0], qualifier)
            && is_punct(&w[1], ':')
            && is_punct(&w[2], ':')
            && is_ident(&w[3], name)
    })
}

fn contains_ident(toks: &[Token], name: &str) -> bool {
    toks.iter().any(|t| is_ident(t, name))
}

/// All string literals (with lines) in a token stream.
pub fn strings(toks: &[Token]) -> Vec<(usize, String)> {
    toks.iter()
        .filter_map(|t| match &t.tok {
            Tok::Str(s) => Some((t.line, s.clone())),
            _ => None,
        })
        .collect()
}

/// Match-arm pairs `Qualifier::Variant => "literal"` in a token stream.
pub fn arm_strings(toks: &[Token], qualifier: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for w in toks.windows(7) {
        if is_ident(&w[0], qualifier)
            && is_punct(&w[1], ':')
            && is_punct(&w[2], ':')
            && is_punct(&w[4], '=')
            && is_punct(&w[5], '>')
        {
            if let (Tok::Ident(v), Tok::Str(s)) = (&w[3].tok, &w[6].tok) {
                out.push((v.clone(), s.clone()));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Lint 1: cache-key-fields
// ---------------------------------------------------------------------------

const CONFIG_RS: &str = "crates/core/src/solver/config.rs";
const SERVER_RS: &str = "crates/service/src/server.rs";
const METHOD_RS: &str = "crates/core/src/solver/method.rs";
const ENGINES_RS: &str = "crates/core/src/solver/engines.rs";
const PROTOCOL_MD: &str = "crates/service/PROTOCOL.md";
const METRICS_RS: &str = "crates/service/src/metrics.rs";
const NAMES_RS: &str = "crates/obs/src/names.rs";

/// Every `SolverConfig` field must be encoded by `config_cache_bytes`
/// or justified in `CACHE_KEY_ALLOWLIST`. See module docs.
pub fn lint_cache_key_fields(src: &Sources, out: &mut Vec<Finding>) -> Result<(), String> {
    let config = lex(&src.read(CONFIG_RS)?);
    let server_text = src.read(SERVER_RS)?;
    let server = lex(&server_text);

    let (_, cfg_body) = braced_item(&config, "struct", "SolverConfig")
        .ok_or("struct SolverConfig not found in config.rs")?;
    let fields = struct_fields(cfg_body);
    if fields.is_empty() {
        return Err("SolverConfig parsed with zero fields".into());
    }

    let (fn_line, fn_body) = braced_item(&server, "fn", "config_cache_bytes")
        .ok_or("fn config_cache_bytes not found in server.rs")?;

    // The exhaustive destructure `let SolverConfig { … } = config;`
    // names every field without encoding it; exclude that span, and
    // exclude `let _ = field;` discards, when testing coverage.
    let mut masked = vec![false; fn_body.len()];
    for i in 0..fn_body.len() {
        if is_ident(&fn_body[i], "SolverConfig") {
            let mut j = i + 1;
            while j < fn_body.len() && !is_punct(&fn_body[j], '{') {
                j += 1;
            }
            let mut depth = 0usize;
            while j < fn_body.len() {
                if is_punct(&fn_body[j], '{') {
                    depth += 1;
                } else if is_punct(&fn_body[j], '}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                masked[j] = true;
                j += 1;
            }
        }
        // `let _ = x ;`
        if is_ident(&fn_body[i], "let")
            && fn_body.get(i + 1).is_some_and(|t| is_ident(t, "_"))
            && fn_body.get(i + 2).is_some_and(|t| is_punct(t, '='))
            && fn_body.get(i + 4).is_some_and(|t| is_punct(t, ';'))
        {
            masked[i + 3] = true;
        }
    }
    let encoded: BTreeSet<&str> = fn_body
        .iter()
        .enumerate()
        .filter(|(i, _)| !masked[*i])
        .filter_map(|(_, t)| match &t.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();

    // Allowlist: `&[("field", "why"), …]` — string literals alternate.
    let allow = const_array_body(&server, "CACHE_KEY_ALLOWLIST")
        .ok_or("CACHE_KEY_ALLOWLIST not found in server.rs")?;
    let allow_strs = strings(allow.1);
    let mut allowed: Vec<(String, String)> = Vec::new();
    for pair in allow_strs.chunks(2) {
        let field = pair[0].1.clone();
        let why = pair.get(1).map(|(_, w)| w.clone()).unwrap_or_default();
        if why.trim().len() < 10 {
            out.push(Finding {
                lint: "cache-key-fields",
                file: SERVER_RS.into(),
                line: pair[0].0,
                message: format!(
                    "CACHE_KEY_ALLOWLIST entry `{field}` lacks a written justification"
                ),
            });
        }
        allowed.push((field, why));
    }

    let field_names: BTreeSet<&str> = fields.iter().map(|(_, f)| f.as_str()).collect();
    for (field, _) in &allowed {
        if !field_names.contains(field.as_str()) {
            out.push(Finding {
                lint: "cache-key-fields",
                file: SERVER_RS.into(),
                line: allow.0,
                message: format!(
                    "CACHE_KEY_ALLOWLIST names `{field}`, which is not a SolverConfig field \
                     (stale allowlist entry)"
                ),
            });
        }
    }

    for (line, field) in &fields {
        let is_allowed = allowed.iter().any(|(f, _)| f == field);
        let is_encoded = encoded.contains(field.as_str());
        if !is_encoded && !is_allowed {
            out.push(Finding {
                lint: "cache-key-fields",
                file: SERVER_RS.into(),
                line: fn_line,
                message: format!(
                    "SolverConfig field `{field}` ({CONFIG_RS}:{line}) is not encoded by \
                     config_cache_bytes and not justified in CACHE_KEY_ALLOWLIST — two configs \
                     differing only in `{field}` would collide in the response cache"
                ),
            });
        }
        if is_encoded && is_allowed {
            out.push(Finding {
                lint: "cache-key-fields",
                file: SERVER_RS.into(),
                line: fn_line,
                message: format!(
                    "SolverConfig field `{field}` is both encoded and allowlisted — drop the \
                     stale CACHE_KEY_ALLOWLIST entry"
                ),
            });
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Lint 2: method-coverage
// ---------------------------------------------------------------------------

/// Every `Method` variant must be wired through the wire-name map,
/// `Method::ALL` (parsing + metrics label set), the engine dispatch,
/// and the protocol docs.
pub fn lint_method_coverage(src: &Sources, out: &mut Vec<Finding>) -> Result<(), String> {
    let method = lex(&src.read(METHOD_RS)?);
    let engines = lex(&src.read(ENGINES_RS)?);
    let protocol = src.read(PROTOCOL_MD)?;

    let (enum_line, enum_body) =
        braced_item(&method, "enum", "Method").ok_or("enum Method not found in method.rs")?;
    let variants = enum_variants(enum_body);
    if variants.is_empty() {
        return Err("enum Method parsed with zero variants".into());
    }

    let (name_line, name_body) =
        braced_item(&method, "fn", "name").ok_or("fn name not found in method.rs")?;
    let arms = arm_strings(name_body, "Method");

    let (all_line, all_body) =
        const_array_body(&method, "ALL").ok_or("const ALL not found in method.rs")?;

    for (vline, v) in &variants {
        let wire = arms.iter().find(|(var, _)| var == v).map(|(_, w)| w);
        match wire {
            None => out.push(Finding {
                lint: "method-coverage",
                file: METHOD_RS.into(),
                line: name_line,
                message: format!(
                    "Method::{v} (declared {METHOD_RS}:{vline}) has no wire-name arm in name() — \
                     it cannot be parsed from requests or labeled in metrics"
                ),
            }),
            Some(wire) => {
                if !protocol.contains(wire.as_str()) {
                    out.push(Finding {
                        lint: "method-coverage",
                        file: PROTOCOL_MD.into(),
                        line: 1,
                        message: format!(
                            "wire name \"{wire}\" (Method::{v}) is not documented in PROTOCOL.md"
                        ),
                    });
                }
            }
        }
        if !contains_path(all_body, "Method", v) && !contains_ident_bare(all_body, v) {
            out.push(Finding {
                lint: "method-coverage",
                file: METHOD_RS.into(),
                line: all_line,
                message: format!(
                    "Method::{v} is missing from Method::ALL — FromStr parsing and the \
                     per-method metrics label set are driven by ALL, so the variant is \
                     unreachable over the wire"
                ),
            });
        }
        if !contains_path(&engines, "Method", v) {
            out.push(Finding {
                lint: "method-coverage",
                file: ENGINES_RS.into(),
                line: 1,
                message: format!("Method::{v} has no dispatch arm in engines.rs"),
            });
        }
    }

    // Arms for variants that no longer exist are dead wire names.
    for (var, wire) in &arms {
        if !variants.iter().any(|(_, v)| v == var) {
            out.push(Finding {
                lint: "method-coverage",
                file: METHOD_RS.into(),
                line: enum_line,
                message: format!(
                    "name() maps Method::{var} to \"{wire}\" but the enum has no such variant"
                ),
            });
        }
    }
    Ok(())
}

fn contains_ident_bare(toks: &[Token], name: &str) -> bool {
    contains_ident(toks, name)
}

// ---------------------------------------------------------------------------
// Lint 3: safety-comments
// ---------------------------------------------------------------------------

/// Every `unsafe` block / `unsafe impl` needs a `// SAFETY:` comment on
/// the same line or contiguously above it (attributes allowed between).
pub fn lint_safety_comments(src: &Sources, out: &mut Vec<Finding>) -> Result<(), String> {
    for rel in rs_files(src) {
        let text = src.read(&rel)?;
        let raw_lines: Vec<&str> = text.lines().collect();
        let toks = lex(&text);
        for i in 0..toks.len() {
            if !is_ident(&toks[i], "unsafe") {
                continue;
            }
            let next = toks.get(i + 1);
            let needs_comment = match next {
                Some(t) if is_punct(t, '{') => true,
                Some(t) if is_ident(t, "impl") => true,
                // `unsafe fn`, `unsafe trait`, `unsafe extern` signatures
                // are covered by their doc comments, not this lint.
                _ => false,
            };
            if !needs_comment {
                continue;
            }
            if !has_safety_comment(&raw_lines, toks[i].line) {
                let kind = if next.is_some_and(|t| is_ident(t, "impl")) {
                    "unsafe impl"
                } else {
                    "unsafe block"
                };
                out.push(Finding {
                    lint: "safety-comments",
                    file: rel.clone(),
                    line: toks[i].line,
                    message: format!(
                        "{kind} without a `// SAFETY:` comment — state the invariant that \
                         makes it sound"
                    ),
                });
            }
        }
    }
    Ok(())
}

fn has_safety_comment(raw_lines: &[&str], line_1based: usize) -> bool {
    let idx = line_1based.saturating_sub(1);
    if raw_lines.get(idx).is_some_and(|l| l.contains("SAFETY:")) {
        return true;
    }
    // Walk up through contiguous comment / attribute lines.
    let mut k = idx;
    while k > 0 {
        k -= 1;
        let t = raw_lines[k].trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") {
            if t.contains("SAFETY:") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

fn rs_files(src: &Sources) -> Vec<String> {
    let mut files = src.walk_rs("crates");
    files.extend(src.walk_rs("src"));
    files.extend(src.walk_rs("vendor"));
    files
}

// ---------------------------------------------------------------------------
// Lint 4: forbid-unsafe
// ---------------------------------------------------------------------------

/// Every workspace member (plus the root package) must carry
/// `#![forbid(unsafe_code)]` and `[lints] workspace = true`, unless
/// named in [`FORBID_UNSAFE_EXCEPTIONS`].
pub fn lint_forbid_unsafe(src: &Sources, out: &mut Vec<Finding>) -> Result<(), String> {
    let root_manifest = src.read("Cargo.toml")?;
    let mut member_dirs = toml_members(&root_manifest);
    member_dirs.push(".".to_string()); // the root `bisched` package

    let mut seen_exceptions: BTreeSet<&str> = BTreeSet::new();
    for dir in &member_dirs {
        let manifest_rel = if dir == "." {
            "Cargo.toml".to_string()
        } else {
            format!("{dir}/Cargo.toml")
        };
        let manifest = src.read(&manifest_rel)?;
        let name = toml_package_name(&manifest)
            .ok_or_else(|| format!("{manifest_rel}: no package name"))?;

        if !manifest.contains("[lints]") || !toml_lints_workspace(&manifest) {
            out.push(Finding {
                lint: "forbid-unsafe",
                file: manifest_rel.clone(),
                line: 1,
                message: format!(
                    "crate `{name}` does not opt into `[lints] workspace = true` — \
                     workspace-wide clippy/rustc lint policy is silently skipped"
                ),
            });
        }

        if let Some(exc) = FORBID_UNSAFE_EXCEPTIONS.iter().find(|e| **e == name) {
            seen_exceptions.insert(exc);
            continue;
        }
        let lib_rel = if dir == "." {
            "src/lib.rs".to_string()
        } else {
            format!("{dir}/src/lib.rs")
        };
        let Ok(lib) = src.read(&lib_rel) else {
            continue; // bin-only member: nothing to anchor the attribute on
        };
        let toks = lex(&lib);
        let has_forbid = toks.windows(6).any(|w| {
            is_punct(&w[0], '#')
                && is_punct(&w[1], '!')
                && is_punct(&w[2], '[')
                && is_ident(&w[3], "forbid")
                && is_punct(&w[4], '(')
                && is_ident(&w[5], "unsafe_code")
        });
        if !has_forbid {
            out.push(Finding {
                lint: "forbid-unsafe",
                file: lib_rel,
                line: 1,
                message: format!(
                    "crate `{name}` lacks `#![forbid(unsafe_code)]` and is not listed in \
                     bisched-analyze's FORBID_UNSAFE_EXCEPTIONS"
                ),
            });
        }
    }

    for exc in FORBID_UNSAFE_EXCEPTIONS {
        if !seen_exceptions.contains(exc) {
            out.push(Finding {
                lint: "forbid-unsafe",
                file: "crates/analyze/src/lib.rs".into(),
                line: 1,
                message: format!(
                    "FORBID_UNSAFE_EXCEPTIONS names `{exc}`, which is not a workspace member \
                     (stale exception)"
                ),
            });
        }
    }
    Ok(())
}

fn toml_members(manifest: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.split('#').next().unwrap_or("");
        if !in_members {
            if line.trim_start().starts_with("members") && line.contains('[') {
                in_members = true;
            } else {
                continue;
            }
        }
        let mut rest = line;
        while let Some(q) = rest.find('"') {
            let tail = &rest[q + 1..];
            let Some(e) = tail.find('"') else { break };
            out.push(tail[..e].to_string());
            rest = &tail[e + 1..];
        }
        if line.contains(']') {
            break;
        }
    }
    out
}

fn toml_package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package && t.starts_with("name") {
            let q = t.find('"')?;
            let rest = &t[q + 1..];
            return Some(rest[..rest.find('"')?].to_string());
        }
    }
    None
}

fn toml_lints_workspace(manifest: &str) -> bool {
    let mut in_lints = false;
    for line in manifest.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_lints = t == "[lints]";
            continue;
        }
        if in_lints && t.starts_with("workspace") && t.contains("true") {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Lint 5: metric-registry
// ---------------------------------------------------------------------------

/// Suffixes a histogram family legitimately appends to a registered
/// base name in the Prometheus exposition.
const METRIC_SUFFIXES: &[&str] = &["_bucket", "_sum", "_count"];

/// Crate-path-ish `bisched_*` tokens that are not metric names.
const NON_METRIC_PREFIXES: &[&str] = &[
    "bisched_obs",
    "bisched_core",
    "bisched_cli",
    "bisched_analyze",
    "bisched_model",
    "bisched_service",
    "bisched_exact",
    "bisched_bench",
    "bisched_fptas",
    "bisched_graph",
    "bisched_cp",
    "bisched_random",
    "bisched_baselines",
    "bisched_lab",
];

/// Metric names must come from `METRIC_NAMES`; flight-recorder event
/// names must come from `EVENT_NAMES` and be literals at the call site.
pub fn lint_metric_registry(src: &Sources, out: &mut Vec<Finding>) -> Result<(), String> {
    // --- Prometheus metric names ---------------------------------------
    let metrics = lex(&src.read(METRICS_RS)?);
    let registry =
        const_array_body(&metrics, "METRIC_NAMES").ok_or("METRIC_NAMES not found in metrics.rs")?;
    let declared: BTreeSet<String> = strings(registry.1).into_iter().map(|(_, s)| s).collect();
    if declared.is_empty() {
        return Err("METRIC_NAMES parsed empty".into());
    }

    // Metric names are emitted from the service crate and read back by
    // the bench/lab tooling; scan both for `bisched_*` string contents.
    let mut metric_files = src.walk_rs("crates/service/src");
    metric_files.extend(src.walk_rs("crates/bench/src"));
    metric_files.extend(src.walk_rs("crates/lab/src"));
    for rel in metric_files {
        let toks = lex(&src.read(&rel)?);
        for (line, lit) in strings(&toks) {
            for name in bisched_tokens(&lit) {
                if NON_METRIC_PREFIXES.iter().any(|p| name.starts_with(p)) {
                    continue;
                }
                let base = METRIC_SUFFIXES
                    .iter()
                    .find_map(|s| name.strip_suffix(s))
                    .unwrap_or(&name);
                if !declared.contains(&name) && !declared.contains(base) {
                    out.push(Finding {
                        lint: "metric-registry",
                        file: rel.clone(),
                        line,
                        message: format!(
                            "metric name `{name}` is not declared in METRIC_NAMES \
                             ({METRICS_RS}) — register it (and its HELP text) there first"
                        ),
                    });
                }
            }
        }
    }

    // --- Flight-recorder event names -----------------------------------
    let names = lex(&src.read(NAMES_RS)?);
    let events =
        const_array_body(&names, "EVENT_NAMES").ok_or("EVENT_NAMES not found in names.rs")?;
    let declared_events: BTreeSet<String> = strings(events.1).into_iter().map(|(_, s)| s).collect();
    if declared_events.is_empty() {
        return Err("EVENT_NAMES parsed empty".into());
    }

    for rel in src.walk_rs("crates") {
        if rel.starts_with("crates/obs/") {
            continue; // the recorder's own docs/tests use ad-hoc names
        }
        let toks = lex(&src.read(&rel)?);
        for i in 0..toks.len().saturating_sub(4) {
            if !(is_ident(&toks[i], "bisched_obs")
                && is_punct(&toks[i + 1], ':')
                && is_punct(&toks[i + 2], ':'))
            {
                continue;
            }
            let f = match &toks[i + 3].tok {
                Tok::Ident(f) => f.as_str(),
                _ => continue,
            };
            if !matches!(f, "span" | "span_arg" | "instant" | "counter") {
                continue;
            }
            if !toks.get(i + 4).is_some_and(|t| is_punct(t, '(')) {
                continue; // a `use` or path mention, not a call
            }
            // The first argument: tokens up to the first `,` (or the
            // closing `)`) at paren depth 0.
            let arg_start = i + 5;
            let mut j = arg_start;
            let mut depth = 0isize;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('(' | '[' | '{') => depth += 1,
                    Tok::Punct(')' | ']' | '}') if depth == 0 => break,
                    Tok::Punct(')' | ']' | '}') => depth -= 1,
                    Tok::Punct(',') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let arg = &toks[arg_start..j.min(toks.len())];
            match arg {
                [t] => {
                    if let Tok::Str(name) = &t.tok {
                        if !declared_events.contains(name) {
                            out.push(Finding {
                                lint: "metric-registry",
                                file: rel.clone(),
                                line: toks[i].line,
                                message: format!(
                                    "event name \"{name}\" passed to bisched_obs::{f} is not \
                                     declared in EVENT_NAMES ({NAMES_RS})"
                                ),
                            });
                        }
                    }
                }
                // `<expr>.name()` is the one sanctioned dynamic form:
                // Method wire names, themselves audited exhaustively by
                // the method-coverage lint.
                _ if arg.windows(4).any(|w| {
                    is_punct(&w[0], '.')
                        && is_ident(&w[1], "name")
                        && is_punct(&w[2], '(')
                        && is_punct(&w[3], ')')
                }) => {}
                _ => out.push(Finding {
                    lint: "metric-registry",
                    file: rel.clone(),
                    line: toks[i].line,
                    message: format!(
                        "bisched_obs::{f} called with a non-literal event name — trace \
                         vocabulary must be statically auditable (use an EVENT_NAMES literal \
                         or a Method `.name()`)"
                    ),
                }),
            }
        }
    }
    Ok(())
}

/// Maximal `bisched_[a-z0-9_]*` tokens inside a string literal.
fn bisched_tokens(lit: &str) -> Vec<String> {
    let mut out = Vec::new();
    let b = lit.as_bytes();
    let mut i = 0usize;
    while let Some(pos) = lit[i..].find("bisched_") {
        let start = i + pos;
        // Must not be preceded by an identifier character.
        if start > 0 && (b[start - 1].is_ascii_alphanumeric() || b[start - 1] == b'_') {
            i = start + 1;
            continue;
        }
        let mut end = start;
        while end < b.len()
            && (b[end].is_ascii_lowercase() || b[end].is_ascii_digit() || b[end] == b'_')
        {
            end += 1;
        }
        out.push(lit[start..end].to_string());
        i = end;
    }
    out
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Runs every lint; returns findings sorted by (file, line). `Err` means
/// the tree itself could not be analyzed (missing anchor item / IO).
pub fn run_all(src: &Sources) -> Result<Vec<Finding>, String> {
    let mut out = Vec::new();
    lint_cache_key_fields(src, &mut out)?;
    lint_method_coverage(src, &mut out)?;
    lint_safety_comments(src, &mut out)?;
    lint_forbid_unsafe(src, &mut out)?;
    lint_metric_registry(src, &mut out)?;
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(out)
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

// ---------------------------------------------------------------------------
// Self-check: prove each lint fires on a seeded mutation
// ---------------------------------------------------------------------------

/// Outcome of one seeded mutation in [`self_check`].
pub struct SelfCheckResult {
    /// Which mutation was applied.
    pub mutation: &'static str,
    /// Did the expected lint produce a matching finding?
    pub caught: bool,
    /// The matching finding (or a note on what was expected).
    pub detail: String,
}

/// Applies known-bad mutations to in-memory copies of the real sources
/// and asserts the corresponding lint catches each one. Returns one
/// result per mutation; `caught == false` anywhere means the linter has
/// gone blind and CI must fail.
pub fn self_check(root: &Path) -> Result<Vec<SelfCheckResult>, String> {
    let clean = run_all(&Sources::new(root))?;
    if !clean.is_empty() {
        return Err(format!(
            "self-check requires a clean tree; {} pre-existing finding(s), first: {}",
            clean.len(),
            clean[0]
        ));
    }

    let plain = Sources::new(root);
    let mut results = Vec::new();

    // Mutation: remove the `seed` encoding line from config_cache_bytes.
    {
        let server = plain.read(SERVER_RS)?;
        let mutated: String = server
            .lines()
            .filter(|l| !l.contains("seed.to_le_bytes"))
            .collect::<Vec<_>>()
            .join("\n");
        results.push(expect_finding(
            root,
            "cache-key-fields: drop `seed` from the cache key",
            vec![(SERVER_RS.into(), mutated)],
            "cache-key-fields",
            "`seed`",
        )?);
    }

    // Mutation: drop the exact-q2 wire-name arm from Method::name().
    {
        let method = plain.read(METHOD_RS)?;
        let mutated: String = method
            .lines()
            .filter(|l| !l.contains("\"exact-q2\""))
            .collect::<Vec<_>>()
            .join("\n");
        results.push(expect_finding(
            root,
            "method-coverage: drop the exact-q2 wire-name arm",
            vec![(METHOD_RS.into(), mutated)],
            "method-coverage",
            "ExactQ2",
        )?);
    }

    // Mutation: strip every SAFETY comment from the obs ring.
    {
        let ring_rel = "crates/obs/src/ring.rs";
        let ring = plain.read(ring_rel)?;
        let mutated: String = ring
            .lines()
            .map(|l| if l.contains("SAFETY:") { "" } else { l })
            .collect::<Vec<_>>()
            .join("\n");
        results.push(expect_finding(
            root,
            "safety-comments: strip SAFETY comments from the obs ring",
            vec![(ring_rel.into(), mutated)],
            "safety-comments",
            "SAFETY",
        )?);
    }

    // Mutation: remove #![forbid(unsafe_code)] from bisched-core.
    {
        let core_rel = "crates/core/src/lib.rs";
        let core = plain.read(core_rel)?;
        let mutated = core.replace("#![forbid(unsafe_code)]", "");
        results.push(expect_finding(
            root,
            "forbid-unsafe: remove forbid(unsafe_code) from bisched-core",
            vec![(core_rel.into(), mutated)],
            "forbid-unsafe",
            "bisched-core",
        )?);
    }

    // Mutation: unregister bisched_requests_total from METRIC_NAMES.
    {
        let metrics = plain.read(METRICS_RS)?;
        let mutated = metrics.replacen("\"bisched_requests_total\",", "", 1);
        results.push(expect_finding(
            root,
            "metric-registry: unregister bisched_requests_total",
            vec![(METRICS_RS.into(), mutated)],
            "metric-registry",
            "bisched_requests_total",
        )?);
    }

    // Mutation: emit a flight-recorder event under an undeclared name.
    {
        let mod_rel = "crates/core/src/solver/mod.rs";
        let mut solver_mod = plain.read(mod_rel)?;
        solver_mod.push_str(
            "\nfn _self_check_probe() { bisched_obs::instant(\"undeclared_event\", \"x\", \"v\", 0); }\n",
        );
        results.push(expect_finding(
            root,
            "metric-registry: emit an undeclared event name",
            vec![(mod_rel.into(), solver_mod)],
            "metric-registry",
            "undeclared_event",
        )?);
    }

    Ok(results)
}

fn expect_finding(
    root: &Path,
    mutation: &'static str,
    overrides: Vec<(String, String)>,
    lint: &str,
    needle: &str,
) -> Result<SelfCheckResult, String> {
    let src = Sources {
        root: root.to_path_buf(),
        overrides,
    };
    let findings = run_all(&src)?;
    let hit = findings
        .iter()
        .find(|f| f.lint == lint && f.message.contains(needle));
    Ok(match hit {
        Some(f) => SelfCheckResult {
            mutation,
            caught: true,
            detail: f.to_string(),
        },
        None => SelfCheckResult {
            mutation,
            caught: false,
            detail: format!(
                "expected a `{lint}` finding mentioning {needle}; got {} finding(s): {:?}",
                findings.len(),
                findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
            ),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_strips_comments_and_keeps_strings() {
        let toks = lex(r##"
            // comment "not a string"
            /* block /* nested */ still comment */
            let x = "hello \" world"; // tail
            let r = r#"raw "quoted" body"#;
            let c = 'x'; let l: &'static str = "s";
        "##);
        let strs: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, [r#"hello \" world"#, r#"raw "quoted" body"#, "s"]);
        assert!(toks.iter().any(|t| is_ident(t, "static")));
    }

    #[test]
    fn struct_fields_and_enum_variants_parse() {
        let s = lex(
            "pub struct S { pub a: u32, b: Option<std::time::Duration>, pub c: Vec<(u8, u8)> }",
        );
        let (_, body) = braced_item(&s, "struct", "S").unwrap();
        let fields: Vec<String> = struct_fields(body).into_iter().map(|(_, f)| f).collect();
        assert_eq!(fields, ["a", "b", "c"]);

        let e = lex("enum E { #[default] A, B(u32), C { x: u8 }, D = 3, E2 }");
        let (_, body) = braced_item(&e, "enum", "E").unwrap();
        let vars: Vec<String> = enum_variants(body).into_iter().map(|(_, v)| v).collect();
        assert_eq!(vars, ["A", "B", "C", "D", "E2"]);
    }

    #[test]
    fn const_array_and_arms_parse() {
        let t = lex(
            r#"pub const ALL: [M; 2] = [M::A, M::B]; fn f() { match m { M::A => "a", M::B => "b" } }"#,
        );
        let (_, body) = const_array_body(&t, "ALL").unwrap();
        assert!(contains_path(body, "M", "A") && contains_path(body, "M", "B"));
        let arms = arm_strings(&t, "M");
        assert_eq!(arms, [("A".into(), "a".into()), ("B".into(), "b".into())]);
    }

    #[test]
    fn bisched_tokens_extracts_metric_names() {
        assert_eq!(
            bisched_tokens("# HELP bisched_requests_total req\nbisched_cache_entries 3"),
            ["bisched_requests_total", "bisched_cache_entries"]
        );
        assert!(bisched_tokens("xbisched_foo").is_empty());
    }

    #[test]
    fn safety_comment_detection() {
        let lines: Vec<&str> = vec!["// SAFETY: fine", "#[allow(x)]", "unsafe impl X {}"];
        assert!(has_safety_comment(&lines, 3));
        let lines2: Vec<&str> = vec!["fn f() {", "    unsafe { x() }"];
        assert!(!has_safety_comment(&lines2, 2));
        let lines3: Vec<&str> = vec!["// SAFETY: same-line check", "let v = unsafe { y() };"];
        assert!(has_safety_comment(&lines3, 2));
    }
}
