//! `bisched-analyze` — CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p bisched-analyze                 # lint the workspace
//! cargo run -p bisched-analyze -- --self-check # prove each lint fires
//! cargo run -p bisched-analyze -- --root PATH  # lint another checkout
//! ```
//!
//! Exit codes: `0` clean, `1` findings (or a failed self-check),
//! `2` the tree could not be analyzed at all.

#![forbid(unsafe_code)]

use bisched_analyze::{find_workspace_root, run_all, self_check, Sources};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: bisched-analyze [--root PATH] [--self-check]

Token-level workspace invariant linter. Lints:
  cache-key-fields   every SolverConfig field is cache-keyed or allowlisted
  method-coverage    every Method variant is parseable, dispatched, documented
  safety-comments    every unsafe block/impl carries a // SAFETY: comment
  forbid-unsafe      #![forbid(unsafe_code)] everywhere but listed exceptions
  metric-registry    metric + trace-event names come from declared registries

--self-check mutates in-memory copies of the real sources (drops a config
field from the cache key, a wire name from Method::name(), a SAFETY
comment, a forbid attribute, a registry entry) and fails unless every
mutation is caught.";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut do_self_check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--self-check" => do_self_check = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("bisched-analyze: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };

    if do_self_check {
        return match self_check(&root) {
            Ok(results) => {
                let mut failed = false;
                for r in &results {
                    let mark = if r.caught { "caught" } else { "MISSED" };
                    println!("self-check [{mark}] {}", r.mutation);
                    println!("    {}", r.detail);
                    failed |= !r.caught;
                }
                if failed {
                    eprintln!("bisched-analyze: self-check FAILED — a lint has gone blind");
                    ExitCode::FAILURE
                } else {
                    println!(
                        "bisched-analyze: self-check ok ({} mutations caught)",
                        results.len()
                    );
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("bisched-analyze: self-check could not run: {e}");
                ExitCode::from(2)
            }
        };
    }

    match run_all(&Sources::new(&root)) {
        Ok(findings) if findings.is_empty() => {
            println!("bisched-analyze: workspace clean ({} lints)", 5);
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("bisched-analyze: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bisched-analyze: cannot analyze tree: {e}");
            ExitCode::from(2)
        }
    }
}
