//! Corpus-level properties of the scenario registry: every registered
//! scenario generates structurally valid instances (the bipartite
//! incompatibility invariants hold and solved schedules validate), and
//! regenerates byte-identically from its fixed seed.

use bisched_core::{Method, SolverConfig};
use bisched_graph::{bipartition, is_bipartite};
use bisched_lab::{suite, suite_names, Scenario};
use bisched_model::InstanceData;
use proptest::prelude::*;

/// Every scenario of every registered suite, deduplicated by name.
fn corpus() -> Vec<Scenario> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for name in suite_names() {
        for scenario in suite(name).expect("registered").scenarios {
            if seen.insert(scenario.name.clone()) {
                out.push(scenario);
            }
        }
    }
    assert!(!out.is_empty(), "registry must not be empty");
    out
}

/// Structural invariants every generated instance must satisfy.
fn assert_structurally_valid(scenario: &Scenario, inst: &bisched_model::Instance) {
    let g = inst.graph();
    assert_eq!(
        g.num_vertices(),
        inst.num_jobs(),
        "{}: graph vertices != jobs",
        scenario.name
    );
    assert!(is_bipartite(g), "{}: graph not bipartite", scenario.name);
    assert!(
        bipartition(g).is_ok(),
        "{}: no 2-coloring witness",
        scenario.name
    );
    assert!(inst.num_machines() >= 1, "{}: no machines", scenario.name);
    assert!(
        (0..inst.num_jobs() as u32).all(|j| inst.processing(j) >= 1)
            || matches!(
                inst.env(),
                bisched_model::MachineEnvironment::Unrelated { .. }
            ),
        "{}: zero-size job",
        scenario.name
    );
    if let bisched_model::MachineEnvironment::Unrelated { times } = inst.env() {
        assert_eq!(times.len(), inst.num_machines());
        assert!(times.iter().all(|row| row.len() == inst.num_jobs()));
        assert!(
            times.iter().flatten().all(|&t| t >= 1),
            "{}: zero unrelated time",
            scenario.name
        );
    }
}

#[test]
fn every_registered_scenario_regenerates_byte_identically() {
    for scenario in corpus() {
        let a = serde_json::to_string(&InstanceData::from_instance(&scenario.build())).unwrap();
        let b = serde_json::to_string(&InstanceData::from_instance(&scenario.build())).unwrap();
        assert_eq!(a, b, "{} not deterministic", scenario.name);
    }
}

#[test]
fn every_registered_scenario_is_structurally_valid_and_solvable() {
    // The cheap portfolio covers all three machine models (LPT
    // everywhere, min-completion greedy on R).
    let solver = SolverConfig::new()
        .portfolio(vec![Method::GreedyLpt, Method::GreedyR])
        .build()
        .unwrap();
    for scenario in corpus() {
        let inst = scenario.build();
        assert_structurally_valid(&scenario, &inst);
        let report = solver
            .solve(&inst)
            .unwrap_or_else(|e| panic!("{}: {e}", scenario.name));
        report
            .schedule
            .validate(&inst)
            .unwrap_or_else(|e| panic!("{}: invalid schedule: {e}", scenario.name));
        assert!(report.makespan >= report.lower_bound);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Reseeded variants of every registry entry stay structurally valid
    /// and solvable — the registry's *families* are sound, not just the
    /// pinned seeds.
    #[test]
    fn reseeded_scenarios_stay_valid((idx, seed) in (0usize..1000, 0u64..10_000)) {
        let corpus = corpus();
        let mut scenario = corpus[idx % corpus.len()].clone();
        scenario.seed = seed;
        let inst = scenario.build();
        assert_structurally_valid(&scenario, &inst);
        let solver = SolverConfig::new()
            .portfolio(vec![Method::GreedyLpt, Method::GreedyR])
            .build()
            .unwrap();
        let report = solver.solve(&inst).unwrap();
        prop_assert!(report.schedule.validate(&inst).is_ok());
        prop_assert!(report.makespan >= report.lower_bound);
    }

    /// Determinism holds for arbitrary seeds, not just the registered
    /// ones.
    #[test]
    fn reseeded_scenarios_regenerate_byte_identically((idx, seed) in (0usize..1000, 0u64..10_000)) {
        let corpus = corpus();
        let mut scenario = corpus[idx % corpus.len()].clone();
        scenario.seed = seed;
        let a = serde_json::to_string(&InstanceData::from_instance(&scenario.build())).unwrap();
        let b = serde_json::to_string(&InstanceData::from_instance(&scenario.build())).unwrap();
        prop_assert_eq!(a, b);
    }
}
