//! Pins the engine-separation property of the quick suite's
//! dense-conflict cells: bounded branch and bound exhausts its node
//! budget unproven, while the CP engine proves optimality well inside
//! its own (smaller) budget. This is the empirical fact the `cp` and
//! `race` lab configs — and the Portfolio race itself — exist for; if a
//! registry edit drifts these cells out of the hard zone, this test
//! fails rather than the bench gate.

use bisched_core::{Guarantee, Method, SolverConfig};
use bisched_lab::suite;

/// The race config's B&B budget (see `scenarios.rs`): generous enough
/// that easy cells close, small enough that the dense cells don't.
const BNB_RACE_NODES: u64 = 150_000;
/// The `cp` config's decision-node budget.
const CP_NODES: u64 = 60_000;

#[test]
fn dense_cells_defeat_bounded_bnb_but_cp_proves_them() {
    let quick = suite("quick").expect("quick suite exists");
    let dense: Vec<_> = quick
        .scenarios
        .iter()
        .filter(|s| s.name.ends_with("-cp"))
        .collect();
    assert_eq!(
        dense.len(),
        3,
        "the quick suite should carry exactly 3 dense-conflict cells"
    );
    for scenario in dense {
        let inst = scenario.build();
        let bnb = SolverConfig::new()
            .method(Method::BranchAndBound)
            .bnb_node_limit(BNB_RACE_NODES)
            .build()
            .unwrap()
            .solve(&inst)
            .expect("bnb returns an incumbent even when truncated");
        assert_ne!(
            bnb.guarantee,
            Guarantee::Optimal,
            "{}: bnb was expected to exhaust {BNB_RACE_NODES} nodes unproven",
            scenario.name
        );
        let cp = SolverConfig::new()
            .method(Method::Cp)
            .cp_node_limit(CP_NODES)
            .build()
            .unwrap()
            .solve(&inst)
            .expect("cp solves the dense cells");
        assert_eq!(
            cp.guarantee,
            Guarantee::Optimal,
            "{}: cp was expected to prove optimality within {CP_NODES} nodes",
            scenario.name
        );
        assert!(
            cp.makespan <= bnb.makespan,
            "{}: cp's proven optimum must not exceed bnb's incumbent",
            scenario.name
        );
    }
}
