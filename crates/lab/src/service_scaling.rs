//! The `service_scaling` ladder: boots the `bisched-service` daemon
//! in-process at growing shard counts and measures aggregate cache-hit
//! throughput under concurrent clients.
//!
//! The measurement is deliberately **hardware-independent**: every
//! request carries a `stall_us` hold that is serialized per shard (the
//! daemon sleeps under a per-shard gate before the cache lookup), so a
//! single shard's ceiling is `1 / stall` requests per second no matter
//! how fast the machine is, and N shards driven by N+ pinned clients
//! approach `N / stall`. The ladder therefore gates the *architecture*
//! (no cross-shard lock on the hot path) rather than the host's clock.
//!
//! Clients stripe by routing key: client `k` only submits instances
//! whose canonical fingerprint lands on shard `k % shards`, so each
//! shard's gate is kept continuously busy by a dedicated connection and
//! the ideal ratio is reachable. Every measured request must be a cache
//! hit — a single miss marks the cell as errored, because a miss means
//! the router scattered a warmed instance to a cold shard.
//!
//! The emitted [`CellReport`]s ride the normal `BENCH_<suite>.json`
//! schema: wall-time percentiles are *client-observed request
//! latencies*, and `counters` carries `req_per_s`, `shards`, `clients`,
//! `requests`, `cache_hits`, `cache_misses`, and `stall_us` so the CI
//! gate can assert the 1→8 shard scaling ratio from the committed
//! baseline file alone.

use crate::report::CellReport;
use crate::runner::percentile;
use bisched_graph::Graph;
use bisched_model::{canonicalize, Instance, InstanceData};
use bisched_service::{Client, Request, ServeOptions, Service};
use std::sync::Arc;

/// Parameters of the scaling ladder (one cell per shard count).
#[derive(Clone, Debug)]
pub struct ServiceScalingParams {
    /// Shard counts to ladder through (one cell each).
    pub shard_counts: Vec<usize>,
    /// Concurrent client connections driving each cell.
    pub clients: usize,
    /// Distinct warm instances required per routing bucket
    /// (`fingerprint % max_shards`).
    pub per_bucket: usize,
    /// Measured requests per client per cell.
    pub requests_per_client: usize,
    /// Serialized per-request hold on the owning shard, microseconds.
    pub stall_us: u64,
}

impl Default for ServiceScalingParams {
    fn default() -> Self {
        ServiceScalingParams {
            shard_counts: vec![1, 2, 4, 8],
            clients: 8,
            per_bucket: 8,
            requests_per_client: 100,
            // Large enough that sleep-timer overshoot (~0.2 ms on a busy
            // Linux host) is noise against the hold, not a second
            // serial term that caps the measurable speedup.
            stall_us: 2_000,
        }
    }
}

/// One warm instance with its precomputed routing key.
struct Keyed {
    data: InstanceData,
    route: u128,
}

/// Generates distinct tiny instances until every routing bucket modulo
/// `max_shards` holds at least `per_bucket` of them. Instances are
/// trivial on purpose: the ladder measures the service front end, not
/// the solver.
fn warm_corpus(max_shards: usize, per_bucket: usize) -> Vec<Keyed> {
    let mut out: Vec<Keyed> = Vec::new();
    let mut filled = vec![0usize; max_shards];
    let mut seed: u64 = 0;
    while filled.iter().any(|&c| c < per_bucket) {
        seed += 1;
        // Distinct size multisets => distinct canonical fingerprints.
        let sizes: Vec<u64> = (0..5).map(|i| 1 + (seed * 7 + i * 13) % 97).collect();
        let inst = Instance::identical(2, sizes, Graph::path(5)).expect("tiny instance");
        let route = canonicalize(&inst).fingerprint;
        if out.iter().any(|k| k.route == route) {
            continue;
        }
        filled[(route % max_shards as u128) as usize] += 1;
        out.push(Keyed {
            data: InstanceData::from_instance(&inst),
            route,
        });
    }
    out
}

/// Runs the whole ladder and returns one cell per shard count.
pub fn run_ladder(params: &ServiceScalingParams) -> Vec<CellReport> {
    let max_shards = params.shard_counts.iter().copied().max().unwrap_or(1);
    let corpus = Arc::new(warm_corpus(max_shards, params.per_bucket));
    params
        .shard_counts
        .iter()
        .map(|&shards| run_cell(shards, Arc::clone(&corpus), params))
        .collect()
}

fn cell_skeleton(shards: usize, corpus_len: usize, params: &ServiceScalingParams) -> CellReport {
    CellReport {
        scenario: "service-cache-hit".into(),
        config: format!("shards-{shards}"),
        model: "P".into(),
        family: "service ladder".into(),
        jobs: corpus_len,
        machines: shards,
        reps: params.requests_per_client,
        mean_ms: 0.0,
        p50_ms: 0.0,
        p90_ms: 0.0,
        max_ms: 0.0,
        makespan: 1.0,
        lower_bound: 1.0,
        ratio_lb: 1.0,
        ratio_opt: None,
        method: "service".into(),
        guarantee: "cache-hit".into(),
        counters: Vec::new(),
        engine_attempts: Vec::new(),
        error: None,
    }
}

fn run_cell(shards: usize, corpus: Arc<Vec<Keyed>>, params: &ServiceScalingParams) -> CellReport {
    let mut cell = cell_skeleton(shards, corpus.len(), params);
    let service = match Service::start(ServeOptions {
        addr: "127.0.0.1:0".into(),
        workers: shards,
        batch: 4,
        cache_cap: corpus.len().max(64),
        queue_cap: 1024,
        shards,
        ..ServeOptions::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            cell.error = Some(format!("service boot: {e}"));
            return cell;
        }
    };
    let addr = service.local_addr();

    // Warm pass: one connection fills every shard's cache.
    let warm = (|| -> Result<(), String> {
        let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
        for k in corpus.iter() {
            let resp = client
                .solve(k.data.clone())
                .map_err(|e| format!("warm solve: {e}"))?;
            if resp.status != "ok" {
                return Err(format!(
                    "warm solve failed: {}",
                    resp.error.unwrap_or(resp.status)
                ));
            }
        }
        Ok(())
    })();
    if let Err(e) = warm {
        cell.error = Some(e);
        service.shutdown();
        service.join();
        return cell;
    }

    // Measured pass: each client pins one shard's residue class and
    // replays it; requests block on the shard's stall gate, so the
    // aggregate rate is shard-bound by construction.
    let t0 = std::time::Instant::now();
    let threads: Vec<_> = (0..params.clients)
        .map(|c| {
            let corpus = Arc::clone(&corpus);
            let n = params.requests_per_client;
            let stall = params.stall_us;
            std::thread::spawn(move || -> Result<(Vec<f64>, u64), String> {
                let mine: Vec<&Keyed> = corpus
                    .iter()
                    .filter(|k| (k.route % shards as u128) as usize == c % shards)
                    .collect();
                if mine.is_empty() {
                    return Err(format!("client {c}: empty residue class"));
                }
                let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
                let mut latencies = Vec::with_capacity(n);
                let mut misses = 0u64;
                for i in 0..n {
                    let mut req = Request::solve(mine[i % mine.len()].data.clone());
                    req.stall_us = Some(stall);
                    let t = std::time::Instant::now();
                    let resp = client.request(&req).map_err(|e| format!("request: {e}"))?;
                    latencies.push(t.elapsed().as_secs_f64() * 1e3);
                    if resp.status != "ok" {
                        return Err(format!("client {c}: {}", resp.error.unwrap_or(resp.status)));
                    }
                    if resp.cached != Some(true) {
                        misses += 1;
                    }
                }
                Ok((latencies, misses))
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    let mut misses = 0u64;
    for t in threads {
        match t.join() {
            Ok(Ok((l, m))) => {
                latencies.extend(l);
                misses += m;
            }
            Ok(Err(e)) => cell.error = Some(e),
            Err(_) => cell.error = Some("client thread panicked".into()),
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    service.shutdown();
    service.join();

    let requests = latencies.len() as u64;
    if misses > 0 && cell.error.is_none() {
        // A warmed instance missing its cache means the router sent it
        // to the wrong shard — the architecture the ladder exists to
        // gate is broken, not merely slow.
        cell.error = Some(format!("{misses} measured requests missed the cache"));
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let req_per_s = requests as f64 / elapsed.max(1e-9);
    cell.mean_ms = latencies.iter().sum::<f64>() / (latencies.len().max(1) as f64);
    cell.p50_ms = percentile(&latencies, 50.0);
    cell.p90_ms = percentile(&latencies, 90.0);
    cell.max_ms = latencies.last().copied().unwrap_or(0.0);
    cell.counters = vec![
        ("req_per_s".into(), req_per_s as u64),
        ("shards".into(), shards as u64),
        ("clients".into(), params.clients as u64),
        ("requests".into(), requests),
        ("cache_hits".into(), requests - misses),
        ("cache_misses".into(), misses),
        ("stall_us".into(), params.stall_us),
    ];
    cell
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_fills_every_bucket_with_distinct_fingerprints() {
        let corpus = warm_corpus(8, 2);
        let mut filled = [0usize; 8];
        for k in &corpus {
            filled[(k.route % 8) as usize] += 1;
        }
        assert!(filled.iter().all(|&c| c >= 2), "buckets: {filled:?}");
        let mut routes: Vec<u128> = corpus.iter().map(|k| k.route).collect();
        routes.sort_unstable();
        routes.dedup();
        assert_eq!(routes.len(), corpus.len(), "fingerprints must be distinct");
    }

    #[test]
    fn a_two_shard_cell_measures_all_hits() {
        let params = ServiceScalingParams {
            shard_counts: vec![2],
            clients: 2,
            per_bucket: 2,
            requests_per_client: 10,
            stall_us: 50,
        };
        let cells = run_ladder(&params);
        assert_eq!(cells.len(), 1);
        let cell = &cells[0];
        assert_eq!(cell.error, None, "{:?}", cell.error);
        assert_eq!(cell.config, "shards-2");
        let get = |name: &str| -> u64 {
            cell.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("requests"), 20);
        assert_eq!(get("cache_hits"), 20);
        assert_eq!(get("cache_misses"), 0);
        assert!(get("req_per_s") > 0);
    }
}
