//! Machine-readable benchmark reports (`BENCH_<suite>.json`) and their
//! Markdown rendering.
//!
//! The JSON schema (version 2) is a single object:
//!
//! ```json
//! {
//!   "schema": 2,
//!   "suite": "quick",
//!   "warmup": 1, "reps": 5,
//!   "total_wall_s": 2.31,
//!   "cells": [ { "scenario": "...", "config": "auto",
//!                "counters": [["nodes", 46213], ["prunes_incumbent", 33107]],
//!                "engine_attempts": [["branch-and-bound", 1], ["alg1", 1]],
//!                ... } ],
//!   "sec4_graph": [ ... ],   // paper-sec4 / full suites only
//!   "sec4_alg2":  [ ... ]
//! }
//! ```
//!
//! Cells key on `scenario/config`; the regression gate
//! ([`crate::compare`]) matches old and new reports cell-by-cell.
//!
//! **v1 → v2**: version 2 adds two per-cell fields — `counters` (the
//! winning engine's `EngineStats`, last rep) and `engine_attempts`
//! (per-engine attempt counts). Both deserialize to empty from a v1
//! file, so `lab compare` accepts a v1 baseline against a v2 candidate:
//! timing and quality gates work unchanged, and counter attribution
//! simply reports the old side as absent until the baseline is
//! re-seeded.

use bisched_random::{Alg2Row, RandomGraphRow};
use serde::{Deserialize, Serialize};

/// Current JSON schema version. Version 2 added per-cell `counters` and
/// `engine_attempts` (absent ⇒ empty when reading v1 files).
pub const SCHEMA_VERSION: u64 = 2;

/// One (scenario × config) measurement row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellReport {
    /// Scenario name from the registry.
    pub scenario: String,
    /// Config name from the suite.
    pub config: String,
    /// Machine model (`P`/`Q`/`R`).
    pub model: String,
    /// Graph-family label.
    pub family: String,
    /// Job count.
    pub jobs: usize,
    /// Machine count.
    pub machines: usize,
    /// Timed repetitions folded into the percentiles.
    pub reps: usize,
    /// Mean wall time per solve, milliseconds.
    pub mean_ms: f64,
    /// Median wall time, milliseconds.
    pub p50_ms: f64,
    /// 90th-percentile wall time, milliseconds.
    pub p90_ms: f64,
    /// Worst observed wall time, milliseconds.
    pub max_ms: f64,
    /// Achieved makespan (as f64).
    pub makespan: f64,
    /// Graph-blind lower bound (as f64).
    pub lower_bound: f64,
    /// `makespan / lower_bound` (≥ 1).
    pub ratio_lb: f64,
    /// `makespan / C*_max` against a proven optimum, when the exact
    /// search completed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ratio_opt: Option<f64>,
    /// Winning engine.
    pub method: String,
    /// Guarantee attached to the returned schedule.
    pub guarantee: String,
    /// The winning engine's runtime counters from the last timed rep
    /// (`EngineStats` pairs — B&B `nodes`/prunes, CP `propagations`/
    /// `restarts`, FPTAS `expanded`/`peak_states`, ...). Empty for
    /// engines that report none, and for v1 files. Schema v2.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub counters: Vec<(String, u64)>,
    /// Per-engine attempt counts of the last timed rep, first-attempt
    /// order — which engines ran (portfolio members, fallbacks), not
    /// just which won. Empty for v1 files. Schema v2.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub engine_attempts: Vec<(String, u64)>,
    /// Solve error, when the cell failed (timings are zero then).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

impl CellReport {
    /// The stable key the regression gate matches cells on.
    pub fn key(&self) -> String {
        format!("{}/{}", self.scenario, self.config)
    }
}

/// A whole suite run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LabReport {
    /// JSON schema version ([`SCHEMA_VERSION`]).
    pub schema: u64,
    /// Suite name.
    pub suite: String,
    /// Warmup solves per cell (not measured).
    pub warmup: usize,
    /// Timed solves per cell.
    pub reps: usize,
    /// Wall time of the whole run, seconds.
    pub total_wall_s: f64,
    /// The measurement rows.
    pub cells: Vec<CellReport>,
    /// Section 4.1 statistics table (paper-sec4 / full suites).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sec4_graph: Option<Vec<RandomGraphRow>>,
    /// Section 4.1 Algorithm 2 ratio table.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sec4_alg2: Option<Vec<Alg2Row>>,
}

impl LabReport {
    /// Renders the report as a Markdown summary.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# bisched lab — suite `{}`\n\n{} cells, {} timed reps each (+{} warmup), \
             total wall time {:.2} s.\n\n",
            self.suite,
            self.cells.len(),
            self.reps,
            self.warmup,
            self.total_wall_s
        ));
        if !self.cells.is_empty() {
            out.push_str(
                "| scenario | config | model | family | jobs | m | p50 ms | p90 ms | \
                 C/LB | C/OPT | method | guarantee |\n\
                 |---|---|---|---|---:|---:|---:|---:|---:|---:|---|---|\n",
            );
            for c in &self.cells {
                if let Some(err) = &c.error {
                    out.push_str(&format!(
                        "| {} | {} | {} | {} | {} | {} | — | — | — | — | error | {} |\n",
                        c.scenario, c.config, c.model, c.family, c.jobs, c.machines, err
                    ));
                    continue;
                }
                let opt = c
                    .ratio_opt
                    .map(|r| format!("{r:.3}"))
                    .unwrap_or_else(|| "—".into());
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {} | {:.3} | {:.3} | {:.3} | {} | {} | {} |\n",
                    c.scenario,
                    c.config,
                    c.model,
                    c.family,
                    c.jobs,
                    c.machines,
                    c.p50_ms,
                    c.p90_ms,
                    c.ratio_lb,
                    opt,
                    c.method,
                    c.guarantee
                ));
            }
        }
        if let Some(rows) = &self.sec4_graph {
            out.push_str(
                "\n## Section 4.1 — random-graph statistics\n\n\
                 | n | regime | p | seeds | \\|V'2\\|/n | Lem.12 bound | mu/n | Lem.13 bound | \
                 \\|V'2\\|/mu | max |\n|---:|---|---:|---:|---:|---:|---:|---:|---:|---:|\n",
            );
            for r in rows {
                out.push_str(&format!(
                    "| {} | {} | {:.5} | {} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} | {:.4} |\n",
                    r.n,
                    r.regime,
                    r.p,
                    r.seeds,
                    r.minor_fraction_mean,
                    r.lemma12_bound,
                    r.matching_fraction_mean,
                    r.lemma13_bound,
                    r.ratio_mean,
                    r.ratio_max
                ));
            }
        }
        if let Some(rows) = &self.sec4_alg2 {
            out.push_str(
                "\n## Section 4.1 — Algorithm 2 vs graph-aware lower bound\n\n\
                 | n | regime | speeds | m | seeds | ratio mean | ratio max | k mean |\n\
                 |---:|---|---|---:|---:|---:|---:|---:|\n",
            );
            for r in rows {
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {:.4} | {:.4} | {:.1} |\n",
                    r.n, r.regime, r.speeds, r.m, r.seeds, r.ratio_mean, r.ratio_max, r.k_mean
                ));
            }
        }
        out
    }

    /// Writes the JSON report to `json_path` and the Markdown rendering
    /// next to it (same stem, `.md`). Returns the Markdown path.
    pub fn write_files(&self, json_path: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let json = serde_json::to_string(self).expect("report serializes");
        std::fs::write(json_path, json + "\n")?;
        let md_path = json_path.with_extension("md");
        std::fs::write(&md_path, self.to_markdown())?;
        Ok(md_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(scenario: &str, config: &str) -> CellReport {
        CellReport {
            scenario: scenario.into(),
            config: config.into(),
            model: "P".into(),
            family: "K{2,2}".into(),
            jobs: 4,
            machines: 2,
            reps: 3,
            mean_ms: 0.5,
            p50_ms: 0.4,
            p90_ms: 0.7,
            max_ms: 0.8,
            makespan: 6.0,
            lower_bound: 5.0,
            ratio_lb: 1.2,
            ratio_opt: Some(1.0),
            method: "alg1".into(),
            guarantee: "optimal".into(),
            counters: vec![("nodes".into(), 42)],
            engine_attempts: vec![("alg1".into(), 1)],
            error: None,
        }
    }

    #[test]
    fn v1_files_deserialize_with_empty_counters() {
        // A schema-1 cell (no counters/engine_attempts on disk) must
        // still load — the upgrade path for committed baselines.
        let v1 = r#"{"schema":1,"suite":"quick","warmup":0,"reps":1,
            "total_wall_s":0.1,"cells":[{"scenario":"a","config":"auto",
            "model":"P","family":"K{2,2}","jobs":4,"machines":2,"reps":1,
            "mean_ms":0.5,"p50_ms":0.4,"p90_ms":0.7,"max_ms":0.8,
            "makespan":6.0,"lower_bound":5.0,"ratio_lb":1.2,
            "method":"alg1","guarantee":"optimal"}]}"#;
        let back: LabReport = serde_json::from_str(v1).unwrap();
        assert_eq!(back.schema, 1);
        assert!(back.cells[0].counters.is_empty());
        assert!(back.cells[0].engine_attempts.is_empty());
    }

    #[test]
    fn json_roundtrip_preserves_cells() {
        let report = LabReport {
            schema: SCHEMA_VERSION,
            suite: "quick".into(),
            warmup: 1,
            reps: 3,
            total_wall_s: 1.5,
            cells: vec![cell("a", "auto"), cell("b", "greedy")],
            sec4_graph: None,
            sec4_alg2: None,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: LabReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.suite, "quick");
        assert_eq!(back.cells.len(), 2);
        assert_eq!(back.cells[0].key(), "a/auto");
        assert_eq!(back.cells[1].ratio_opt, Some(1.0));
        assert_eq!(back.cells[0].counters, vec![("nodes".to_string(), 42)]);
        assert_eq!(back.cells[0].engine_attempts, vec![("alg1".to_string(), 1)]);
        assert!(back.sec4_graph.is_none());
    }

    #[test]
    fn markdown_contains_every_cell_key() {
        let report = LabReport {
            schema: SCHEMA_VERSION,
            suite: "quick".into(),
            warmup: 0,
            reps: 1,
            total_wall_s: 0.1,
            cells: vec![cell("p3-k8x12", "auto")],
            sec4_graph: None,
            sec4_alg2: None,
        };
        let md = report.to_markdown();
        assert!(md.contains("p3-k8x12"));
        assert!(md.contains("| scenario |"));
    }
}
