//! # bisched-lab
//!
//! The scenario corpus and benchmark harness of the workspace: a registry
//! of named, seeded workload families spanning `{P, Q, R} ×` graph
//! families ([`scenarios`]), a rayon-parallel experiment runner with
//! warmup, repetitions, wall-time percentiles, and quality ratios
//! ([`runner`], [`quality`]), machine-readable `BENCH_<suite>.json`
//! reports with Markdown summaries ([`report`]), and the perf-regression
//! gate CI runs on every push ([`compare`]).
//!
//! Driven from the command line:
//!
//! ```text
//! bisched_cli lab list
//! bisched_cli lab run --suite quick --out BENCH_quick.json
//! bisched_cli lab compare BENCH_baseline.json BENCH_quick.json --fail-threshold 150
//! ```
//!
//! Programmatic use:
//!
//! ```
//! use bisched_lab::{compare, run_suite, suite, CompareOptions, QualityOptions, RunOptions};
//!
//! let quick = suite("quick").unwrap();
//! let opts = RunOptions {
//!     warmup: 0,
//!     reps: 1,
//!     quality: QualityOptions {
//!         exact_cap_jobs: 0, // skip the exact side channel for this demo
//!         ..QualityOptions::default()
//!     },
//!     ..RunOptions::default()
//! };
//! let report = run_suite(&quick, &opts);
//! assert_eq!(report.cells.len(), quick.scenarios.len() * quick.configs.len());
//! // A report never regresses against itself.
//! assert!(compare(&report, &report, &CompareOptions::default()).passed());
//! ```

#![warn(missing_docs)]
// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
pub mod compare;
pub mod quality;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod service_scaling;

pub use compare::{compare, CompareOptions, CompareOutcome, Finding};
pub use quality::{assess, exact_optimum, Quality, QualityOptions};
pub use report::{CellReport, LabReport, SCHEMA_VERSION};
pub use runner::{percentile, run_suite, RunOptions};
pub use scenarios::{
    suite, suite_names, GraphFamily, ModelSpec, NamedConfig, Scenario, Sec4Params, Suite,
};
pub use service_scaling::ServiceScalingParams;
