//! The scenario registry: named, seeded workload families spanning
//! `{P, Q, R} ×` graph families `×` job-size distributions `×` machine
//! counts.
//!
//! A [`Scenario`] is a pure description; [`Scenario::build`] derives the
//! concrete [`Instance`] deterministically from the embedded seed, so a
//! registry entry regenerates byte-identically forever — the property the
//! regression gate and the corpus tests both stand on.
//!
//! Graph families covered:
//!
//! * complete bipartite `K_{a,b}` (the `[20]`/`[24]` special case);
//! * Gilbert `G(n,n,p)` in the paper's sub-critical / critical /
//!   super-critical regimes (Section 4.1);
//! * crowns `S_n^0` and `d`-regular (cubic) bipartite graphs — the
//!   uniform-machine families of Furmańczyk–Kubale (1602.01867,
//!   1502.04240);
//! * forests and caterpillars (the tree-structured `[3]`/`[7]` line);
//! * bounded-degree ("bisubquartic", `[23]`) bipartite graphs;
//! * the adversarial Theorem 24 gadget instances, where the unrelated
//!   times encode a 1-PrExt gap.

use bisched_core::reduce_1prext_to_rm;
use bisched_exact::{claw_no_instance, path_yes_instance};
use bisched_graph::{
    bounded_degree_bipartite, caterpillar, gilbert_bipartite, random_forest, regular_bipartite,
    EdgeProbability, Graph,
};
use bisched_model::{Instance, JobSizes, SpeedProfile, UnrelatedFamily};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named graph family with fixed shape parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphFamily {
    /// `K_{a,b}`.
    CompleteBipartite {
        /// Left part size.
        a: usize,
        /// Right part size.
        b: usize,
    },
    /// Gilbert `G(n,n,p(n))` in one of the paper's regimes.
    Gilbert {
        /// Side size `n` (the instance has `2n` jobs).
        n: usize,
        /// The `p(n)` regime.
        regime: EdgeProbability,
    },
    /// The crown `S_n^0`: `K_{n,n}` minus a perfect matching.
    Crown {
        /// Side size.
        n: usize,
    },
    /// Random `d`-regular bipartite graph (`d = 3` is the cubic family).
    Regular {
        /// Side size.
        n: usize,
        /// Degree.
        d: usize,
    },
    /// A random labelled forest over `n` vertices in `trees` components.
    Forest {
        /// Total vertices.
        n: usize,
        /// Number of trees.
        trees: usize,
    },
    /// A caterpillar: spine of `spine` vertices, `legs` leaves each.
    Caterpillar {
        /// Spine length.
        spine: usize,
        /// Pendant leaves per spine vertex.
        legs: usize,
    },
    /// Random bipartite graph with per-side maximum degree `max_deg`
    /// (`max_deg = 4` is the bisubquartic class of [23]).
    BoundedDegree {
        /// Side size.
        n: usize,
        /// Degree cap.
        max_deg: usize,
    },
    /// The Theorem 24 gadget: a 1-PrExt NO instance (claw) stretched into
    /// an `Rm` instance whose optimum jumps from `n` to `d`. Requires the
    /// `R` machine model; job times come from the reduction itself.
    Gadget24No {
        /// Independent-set padding of the claw source.
        padding: usize,
    },
    /// The Theorem 24 gadget over a YES instance (path): the cheap
    /// color-extension schedule exists.
    Gadget24Yes {
        /// Independent-set padding of the path source.
        padding: usize,
    },
}

impl GraphFamily {
    /// Short family key for report rows (stable across runs).
    pub fn label(&self) -> String {
        match *self {
            GraphFamily::CompleteBipartite { a, b } => format!("K{{{a},{b}}}"),
            GraphFamily::Gilbert { n, regime } => format!("G({n},{})", regime.label()),
            GraphFamily::Crown { n } => format!("crown({n})"),
            GraphFamily::Regular { n, d } => format!("{d}-regular({n})"),
            GraphFamily::Forest { n, trees } => format!("forest({n},{trees})"),
            GraphFamily::Caterpillar { spine, legs } => format!("caterpillar({spine}x{legs})"),
            GraphFamily::BoundedDegree { n, max_deg } => format!("deg<={max_deg}({n})"),
            GraphFamily::Gadget24No { padding } => format!("thm24-no({padding})"),
            GraphFamily::Gadget24Yes { padding } => format!("thm24-yes({padding})"),
        }
    }

    /// Samples the graph (deterministic given `rng`'s state).
    fn build(&self, rng: &mut StdRng) -> Graph {
        match *self {
            GraphFamily::CompleteBipartite { a, b } => Graph::complete_bipartite(a, b),
            GraphFamily::Gilbert { n, regime } => gilbert_bipartite(n, n, regime.eval(n), rng),
            GraphFamily::Crown { n } => Graph::crown(n),
            GraphFamily::Regular { n, d } => regular_bipartite(n, d, rng),
            GraphFamily::Forest { n, trees } => random_forest(n, trees, rng),
            GraphFamily::Caterpillar { spine, legs } => caterpillar(spine, legs),
            GraphFamily::BoundedDegree { n, max_deg } => {
                bounded_degree_bipartite(n, n, max_deg, 0.8, rng)
            }
            // The gadget families are whole-instance constructions;
            // `Scenario::build` intercepts them before this point because
            // the bare source graph without the reduction's times would
            // be a different workload than the registry promises.
            GraphFamily::Gadget24No { .. } | GraphFamily::Gadget24Yes { .. } => {
                unreachable!("Thm 24 gadgets are built by Scenario::build via the reduction")
            }
        }
    }
}

/// The machine environment of a scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ModelSpec {
    /// Identical machines (`P`).
    P {
        /// Machine count.
        m: usize,
    },
    /// Uniform machines (`Q`) with a speed profile.
    Q {
        /// Machine count.
        m: usize,
        /// Speed shape.
        profile: SpeedProfile,
    },
    /// Unrelated machines (`R`) with a processing-time family.
    R {
        /// Machine count.
        m: usize,
        /// Matrix shape.
        family: UnrelatedFamily,
    },
}

impl ModelSpec {
    /// `"P"`, `"Q"`, or `"R"`.
    pub fn alpha(&self) -> &'static str {
        match self {
            ModelSpec::P { .. } => "P",
            ModelSpec::Q { .. } => "Q",
            ModelSpec::R { .. } => "R",
        }
    }

    /// Machine count.
    pub fn machines(&self) -> usize {
        match *self {
            ModelSpec::P { m } | ModelSpec::Q { m, .. } | ModelSpec::R { m, .. } => m,
        }
    }
}

/// One named, seeded workload: everything needed to regenerate its
/// [`Instance`] byte-identically.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Unique registry name (stable; report rows key on it).
    pub name: String,
    /// Machine environment.
    pub model: ModelSpec,
    /// Incompatibility-graph family.
    pub graph: GraphFamily,
    /// Job-size distribution (ignored for `R` and the Thm 24 gadgets,
    /// where times live in the matrix).
    pub sizes: JobSizes,
    /// The deterministic seed.
    pub seed: u64,
}

impl Scenario {
    /// Builds the concrete instance. Deterministic: two calls return
    /// byte-identical instances.
    pub fn build(&self) -> Instance {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // The Thm 24 gadgets are whole-instance constructions: the
        // reduction fixes the unrelated times, so the model spec only
        // contributes the machine count.
        match self.graph {
            GraphFamily::Gadget24No { padding } => {
                let (g, pins) = claw_no_instance(padding);
                let d = 4 * g.num_vertices() as u64;
                return reduce_1prext_to_rm(&g, pins, d, self.model.machines().max(3)).instance;
            }
            GraphFamily::Gadget24Yes { padding } => {
                let (g, pins) = path_yes_instance(padding);
                let d = 4 * g.num_vertices() as u64;
                return reduce_1prext_to_rm(&g, pins, d, self.model.machines().max(3)).instance;
            }
            _ => {}
        }
        let graph = self.graph.build(&mut rng);
        let n = graph.num_vertices();
        match &self.model {
            ModelSpec::P { m } => Instance::identical(*m, self.sizes.sample(n, &mut rng), graph),
            ModelSpec::Q { m, profile } => {
                Instance::uniform(profile.speeds(*m), self.sizes.sample(n, &mut rng), graph)
            }
            ModelSpec::R { m, family } => {
                Instance::unrelated(family.sample(*m, n, &mut rng), graph)
            }
        }
        .expect("registry scenarios are constructed valid")
    }

    /// One-line description for `lab list`.
    pub fn describe(&self) -> String {
        format!(
            "{:<28} {}  m={:<2} {:<20} sizes={}",
            self.name,
            self.model.alpha(),
            self.model.machines(),
            self.graph.label(),
            self.sizes.label()
        )
    }
}

/// A named solver configuration for the experiment matrix.
#[derive(Clone, Debug)]
pub struct NamedConfig {
    /// Stable config key (report rows key on it).
    pub name: String,
    /// The configuration.
    pub config: bisched_core::SolverConfig,
}

/// A suite: scenarios × configs, plus the optional Section 4.1 table
/// pass and the optional sharded-service scaling ladder.
#[derive(Clone, Debug)]
pub struct Suite {
    /// Suite name (`quick`, `full`, `paper-sec4`).
    pub name: String,
    /// The scenario corpus.
    pub scenarios: Vec<Scenario>,
    /// The solver configurations each scenario runs under.
    pub configs: Vec<NamedConfig>,
    /// Whether to also run the paper's Section 4.1 random-graph tables.
    pub sec4: Option<Sec4Params>,
    /// Whether to also run the sharded-service throughput ladder (the
    /// `service_scaling` suite).
    pub service: Option<crate::service_scaling::ServiceScalingParams>,
}

/// Size parameters for the Section 4.1 reproduction pass.
#[derive(Clone, Copy, Debug)]
pub struct Sec4Params {
    /// Side size `n` for the statistics table.
    pub n: usize,
    /// Seeds per row.
    pub seeds: usize,
    /// Machine count for the Algorithm 2 ratio table.
    pub m: usize,
}

/// Names of the registered suites.
pub fn suite_names() -> &'static [&'static str] {
    &[
        "quick",
        "full",
        "paper-sec4",
        "fptas-scaling",
        "service_scaling",
    ]
}

/// Looks up a registered suite.
pub fn suite(name: &str) -> Option<Suite> {
    match name {
        "quick" => Some(quick_suite()),
        "full" => Some(full_suite()),
        "paper-sec4" => Some(paper_sec4_suite()),
        "fptas-scaling" => Some(fptas_scaling_suite()),
        "service_scaling" => Some(service_scaling_suite()),
        _ => None,
    }
}

/// The sharded-service throughput ladder (no solver scenarios: it boots
/// the daemon in-process and measures cache-hit req/s at 1→8 shards —
/// see [`crate::service_scaling`]).
fn service_scaling_suite() -> Suite {
    Suite {
        name: "service_scaling".into(),
        scenarios: Vec::new(),
        configs: Vec::new(),
        sec4: None,
        service: Some(crate::service_scaling::ServiceScalingParams::default()),
    }
}

fn sc(name: &str, model: ModelSpec, graph: GraphFamily, sizes: JobSizes, seed: u64) -> Scenario {
    Scenario {
        name: name.to_string(),
        model,
        graph,
        sizes,
        seed,
    }
}

fn auto() -> NamedConfig {
    NamedConfig {
        name: "auto".into(),
        config: bisched_core::SolverConfig::new(),
    }
}

/// `Auto` with the branch-and-bound fast path disabled: times the pure
/// approximation pipeline even on small instances.
fn auto_approx() -> NamedConfig {
    NamedConfig {
        name: "auto-approx".into(),
        config: bisched_core::SolverConfig::new().auto_exact_jobs(0),
    }
}

/// Graph-aware greedy baselines (LPT everywhere, min-completion on `R`).
fn baseline() -> NamedConfig {
    NamedConfig {
        name: "greedy".into(),
        config: bisched_core::SolverConfig::new().portfolio(vec![
            bisched_core::Method::GreedyLpt,
            bisched_core::Method::GreedyR,
        ]),
    }
}

/// Forces the CP engine with a CI-sized decision-node budget
/// (propagation nodes are costlier than branch-and-bound nodes, and the
/// quick suite runs in debug mode under the tier-1 tests).
fn cp() -> NamedConfig {
    NamedConfig {
        name: "cp".into(),
        config: bisched_core::SolverConfig::new()
            .method(bisched_core::Method::Cp)
            .cp_node_limit(60_000),
    }
}

/// The concurrent portfolio race the dense-conflict cells exist for: CP
/// and branch and bound start together (list order seeds the
/// single-worker schedule), share an incumbent bound, and the first
/// proof cancels the other. Budgets match the single-engine configs so
/// the race's p50 is comparable to the faster member's.
fn race() -> NamedConfig {
    NamedConfig {
        name: "race".into(),
        config: bisched_core::SolverConfig::new()
            .portfolio(vec![
                bisched_core::Method::Cp,
                bisched_core::Method::BranchAndBound,
            ])
            .cp_node_limit(60_000)
            .bnb_node_limit(150_000),
    }
}

/// A sharper FPTAS setting (only differs from `auto` on `R2`).
fn sharp_eps() -> NamedConfig {
    NamedConfig {
        name: "eps-0.05".into(),
        config: bisched_core::SolverConfig::new()
            .eps(0.05)
            .auto_exact_jobs(0),
    }
}

/// Forces the approximation pipeline all the way down: the exact DP gate
/// and the branch-and-bound fast path are both disabled, so `R2` cells
/// time Algorithm 5's FPTAS at the given `ε` (and `P`/`Q` cells the
/// Algorithm 1 route, whose inner Algorithm 5 call is the same DP).
fn fptas_eps(name: &str, eps: f64) -> NamedConfig {
    NamedConfig {
        name: name.into(),
        config: bisched_core::SolverConfig::new()
            .eps(eps)
            .exact_budget(0)
            .auto_exact_jobs(0),
    }
}

/// The CI-sized corpus: all three machine models, eight graph families,
/// seconds of wall time. This is the regression-gate suite.
fn quick_suite() -> Suite {
    let crit = EdgeProbability::Critical { a: 2.0 };
    let sup = EdgeProbability::SuperCritical {
        c: 1.0,
        exponent: 0.5,
    };
    let sub = EdgeProbability::SubCritical { exponent: 1.5 };
    let scenarios = vec![
        // P — identical machines.
        sc(
            "p3-k24x36-uniform",
            ModelSpec::P { m: 3 },
            GraphFamily::CompleteBipartite { a: 24, b: 36 },
            JobSizes::Uniform { lo: 1, hi: 30 },
            101,
        ),
        sc(
            "p4-gilbert-crit-bimodal",
            ModelSpec::P { m: 4 },
            GraphFamily::Gilbert {
                n: 80,
                regime: crit,
            },
            JobSizes::Bimodal {
                small: (1, 4),
                big: (40, 80),
                big_percent: 20,
            },
            102,
        ),
        sc(
            "p8-crown64-unit",
            ModelSpec::P { m: 8 },
            GraphFamily::Crown { n: 64 },
            JobSizes::Unit,
            103,
        ),
        // Oracle-scale cells: small enough for the exact side channel,
        // hard enough that the pre-rewrite branch and bound exhausted the
        // 400k-node quality budget on them (no `ratio_opt`); the pruned
        // oracle proves both, so their `auto` cells carry C/OPT now.
        sc(
            "p4-gilbert20-oracle",
            ModelSpec::P { m: 4 },
            GraphFamily::Gilbert {
                n: 10,
                regime: EdgeProbability::Constant { p: 0.3 },
            },
            JobSizes::Uniform { lo: 1, hi: 9 },
            134,
        ),
        sc(
            "q4-gilbert24-oracle",
            ModelSpec::Q {
                m: 4,
                profile: SpeedProfile::TwoTier {
                    fast_count: 2,
                    factor: 4,
                },
            },
            GraphFamily::Gilbert {
                n: 12,
                regime: EdgeProbability::Constant { p: 0.25 },
            },
            JobSizes::Uniform { lo: 1, hi: 12 },
            141,
        ),
        // Q — uniform machines.
        sc(
            "q3-cubic64-uniform",
            ModelSpec::Q {
                m: 3,
                profile: SpeedProfile::Geometric { ratio: 2 },
            },
            GraphFamily::Regular { n: 64, d: 3 },
            JobSizes::Uniform { lo: 1, hi: 20 },
            104,
        ),
        sc(
            "q4-caterpillar-onefast",
            ModelSpec::Q {
                m: 4,
                profile: SpeedProfile::OneFast { factor: 8 },
            },
            GraphFamily::Caterpillar { spine: 24, legs: 4 },
            JobSizes::Uniform { lo: 1, hi: 25 },
            105,
        ),
        sc(
            "q2-forest60-uniform",
            ModelSpec::Q {
                m: 2,
                profile: SpeedProfile::Geometric { ratio: 2 },
            },
            GraphFamily::Forest { n: 60, trees: 4 },
            JobSizes::Uniform { lo: 1, hi: 15 },
            106,
        ),
        sc(
            "q8-gilbert-super-unit",
            ModelSpec::Q {
                m: 8,
                profile: SpeedProfile::TwoTier {
                    fast_count: 2,
                    factor: 4,
                },
            },
            GraphFamily::Gilbert { n: 96, regime: sup },
            JobSizes::Unit,
            107,
        ),
        // R — unrelated machines.
        sc(
            "r2-bounded-deg-uncorr",
            ModelSpec::R {
                m: 2,
                family: UnrelatedFamily::Uncorrelated { lo: 1, hi: 40 },
            },
            GraphFamily::BoundedDegree { n: 40, max_deg: 4 },
            JobSizes::Unit,
            108,
        ),
        sc(
            "r3-gilbert-sub-jobcorr",
            ModelSpec::R {
                m: 3,
                family: UnrelatedFamily::JobCorrelated {
                    base: (5, 60),
                    spread: 8,
                },
            },
            GraphFamily::Gilbert { n: 64, regime: sub },
            JobSizes::Unit,
            109,
        ),
        // FPTAS-backed cells: big job-correlated values push the row mass
        // past the exact-DP budget, so even `auto` lands on Algorithm 5 —
        // these are the cells the bench gate watches the DP core through.
        sc(
            "r2-forest96-jobcorr-fptas",
            ModelSpec::R {
                m: 2,
                family: UnrelatedFamily::JobCorrelated {
                    base: (1_000, 100_000),
                    spread: 2_000,
                },
            },
            GraphFamily::Forest { n: 96, trees: 8 },
            JobSizes::Unit,
            151,
        ),
        sc(
            "r2-gilbert-sub96-jobcorr-fptas",
            ModelSpec::R {
                m: 2,
                family: UnrelatedFamily::JobCorrelated {
                    base: (1_000, 100_000),
                    spread: 2_000,
                },
            },
            GraphFamily::Gilbert { n: 48, regime: sub },
            JobSizes::Unit,
            152,
        ),
        // Dense-conflict cells (mid-density Gilbert, n >= 36 jobs): the
        // conflict graph is dense enough that plain branch and bound
        // drowns in half-feasible subtrees and exhausts its node budget
        // unproven (even at the 2M-node default), while CP's
        // conflict-domain propagation plus makespan binary search closes
        // the proof in well under its budget. Maximally dense graphs
        // (crowns, near-complete Gilbert) do NOT have this property —
        // they collapse the feasible space and B&B closes them in
        // milliseconds — so these cells sit deliberately in the
        // moderate-density hard zone. These are the cells the `cp` and
        // `race` configs exist for.
        sc(
            "p4-gilbert36-dense-cp",
            ModelSpec::P { m: 4 },
            GraphFamily::Gilbert {
                n: 18,
                regime: EdgeProbability::Constant { p: 0.35 },
            },
            JobSizes::Uniform { lo: 1, hi: 8 },
            64,
        ),
        sc(
            "p5-gilbert36-dense-cp",
            ModelSpec::P { m: 5 },
            GraphFamily::Gilbert {
                n: 18,
                regime: EdgeProbability::Constant { p: 0.40 },
            },
            JobSizes::Uniform { lo: 2, hi: 9 },
            61,
        ),
        sc(
            "p6-gilbert40-dense-cp",
            ModelSpec::P { m: 6 },
            GraphFamily::Gilbert {
                n: 20,
                regime: EdgeProbability::Constant { p: 0.40 },
            },
            JobSizes::Uniform { lo: 2, hi: 9 },
            63,
        ),
        sc(
            "r4-thm24-no-gadget",
            ModelSpec::R {
                m: 4,
                family: UnrelatedFamily::Uncorrelated { lo: 1, hi: 1 },
            },
            GraphFamily::Gadget24No { padding: 16 },
            JobSizes::Unit,
            110,
        ),
        sc(
            "r3-thm24-yes-gadget",
            ModelSpec::R {
                m: 3,
                family: UnrelatedFamily::Uncorrelated { lo: 1, hi: 1 },
            },
            GraphFamily::Gadget24Yes { padding: 4 },
            JobSizes::Unit,
            111,
        ),
    ];
    Suite {
        name: "quick".into(),
        scenarios,
        configs: vec![
            auto(),
            baseline(),
            fptas_eps("fptas", bisched_core::DEFAULT_EPS),
            cp(),
            race(),
        ],
        sec4: None,
        service: None,
    }
}

/// The FPTAS scaling grid: ε × n × m over the corpus's graph families.
/// The `n` axis runs through `R2` cells of growing job counts (each lands
/// on Algorithm 5's DP directly); the `m` axis through `Q` cells whose
/// Algorithm 1 route calls the same DP under more machines. Paired with
/// the `fptas_scaling` criterion bench; `lab compare` gates regressions.
fn fptas_scaling_suite() -> Suite {
    let jobcorr = UnrelatedFamily::JobCorrelated {
        base: (1_000, 100_000),
        spread: 2_000,
    };
    let scenarios = vec![
        sc(
            "r2-fscale-n40",
            ModelSpec::R {
                m: 2,
                family: jobcorr,
            },
            GraphFamily::BoundedDegree { n: 20, max_deg: 4 },
            JobSizes::Unit,
            161,
        ),
        sc(
            "r2-fscale-n80",
            ModelSpec::R {
                m: 2,
                family: jobcorr,
            },
            GraphFamily::BoundedDegree { n: 40, max_deg: 4 },
            JobSizes::Unit,
            162,
        ),
        sc(
            "r2-fscale-n160",
            ModelSpec::R {
                m: 2,
                family: jobcorr,
            },
            GraphFamily::BoundedDegree { n: 80, max_deg: 4 },
            JobSizes::Unit,
            163,
        ),
        sc(
            "q3-fscale-cubic96",
            ModelSpec::Q {
                m: 3,
                profile: SpeedProfile::Geometric { ratio: 2 },
            },
            GraphFamily::Regular { n: 48, d: 3 },
            JobSizes::Uniform { lo: 1, hi: 30 },
            164,
        ),
        sc(
            "q6-fscale-crown96",
            ModelSpec::Q {
                m: 6,
                profile: SpeedProfile::TwoTier {
                    fast_count: 2,
                    factor: 4,
                },
            },
            GraphFamily::Crown { n: 48 },
            JobSizes::Uniform { lo: 1, hi: 30 },
            165,
        ),
    ];
    Suite {
        name: "fptas-scaling".into(),
        scenarios,
        configs: vec![
            fptas_eps("eps-1.0", 1.0),
            fptas_eps("eps-0.25", 0.25),
            fptas_eps("eps-0.05", 0.05),
        ],
        sec4: None,
        service: None,
    }
}

/// The nightly-sized corpus: the quick scenarios scaled up, extra regimes
/// and machine-correlated `R` shapes, and the full config matrix.
fn full_suite() -> Suite {
    let mut scenarios = quick_suite().scenarios;
    let crit4 = EdgeProbability::Critical { a: 4.0 };
    scenarios.extend([
        sc(
            "p6-k48x72-uniform",
            ModelSpec::P { m: 6 },
            GraphFamily::CompleteBipartite { a: 48, b: 72 },
            JobSizes::Uniform { lo: 1, hi: 50 },
            201,
        ),
        sc(
            "p4-forest192-bimodal",
            ModelSpec::P { m: 4 },
            GraphFamily::Forest { n: 192, trees: 8 },
            JobSizes::Bimodal {
                small: (1, 5),
                big: (60, 120),
                big_percent: 15,
            },
            202,
        ),
        sc(
            "q6-crown96-uniform",
            ModelSpec::Q {
                m: 6,
                profile: SpeedProfile::Geometric { ratio: 2 },
            },
            GraphFamily::Crown { n: 96 },
            JobSizes::Uniform { lo: 1, hi: 40 },
            203,
        ),
        sc(
            "q5-cubic128-unit",
            ModelSpec::Q {
                m: 5,
                profile: SpeedProfile::OneFast { factor: 16 },
            },
            GraphFamily::Regular { n: 128, d: 3 },
            JobSizes::Unit,
            204,
        ),
        sc(
            "q4-gilbert-crit4-uniform",
            ModelSpec::Q {
                m: 4,
                profile: SpeedProfile::TwoTier {
                    fast_count: 2,
                    factor: 8,
                },
            },
            GraphFamily::Gilbert {
                n: 128,
                regime: crit4,
            },
            JobSizes::Uniform { lo: 1, hi: 30 },
            205,
        ),
        sc(
            "r2-k32x32-uncorr",
            ModelSpec::R {
                m: 2,
                family: UnrelatedFamily::Uncorrelated { lo: 1, hi: 60 },
            },
            GraphFamily::CompleteBipartite { a: 32, b: 32 },
            JobSizes::Unit,
            206,
        ),
        sc(
            "r4-caterpillar-machcorr",
            ModelSpec::R {
                m: 4,
                family: UnrelatedFamily::MachineCorrelated {
                    base: (10, 90),
                    spread: 10,
                },
            },
            GraphFamily::Caterpillar { spine: 32, legs: 5 },
            JobSizes::Unit,
            207,
        ),
        sc(
            "r8-thm24-no-gadget",
            ModelSpec::R {
                m: 8,
                family: UnrelatedFamily::Uncorrelated { lo: 1, hi: 1 },
            },
            GraphFamily::Gadget24No { padding: 40 },
            JobSizes::Unit,
            208,
        ),
    ]);
    Suite {
        name: "full".into(),
        scenarios,
        configs: vec![auto(), auto_approx(), baseline(), sharp_eps()],
        sec4: Some(Sec4Params {
            n: 256,
            seeds: 16,
            m: 6,
        }),
        service: None,
    }
}

/// The Section 4.1 reproduction: the paper's random-graph statistics and
/// Algorithm 2 ratio tables as machine-readable rows.
fn paper_sec4_suite() -> Suite {
    Suite {
        name: "paper-sec4".into(),
        scenarios: Vec::new(),
        configs: Vec::new(),
        sec4: Some(Sec4Params {
            n: 256,
            seeds: 16,
            m: 6,
        }),
        service: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_suites_resolve() {
        for name in suite_names() {
            let s = suite(name).expect("registered suite resolves");
            assert_eq!(&s.name, name);
            let mut seen = std::collections::HashSet::new();
            for scenario in &s.scenarios {
                assert!(seen.insert(scenario.name.clone()), "dup {}", scenario.name);
            }
        }
        assert!(suite("nope").is_none());
    }

    #[test]
    fn quick_suite_spans_models_and_families() {
        let s = suite("quick").unwrap();
        let models: std::collections::HashSet<_> =
            s.scenarios.iter().map(|x| x.model.alpha()).collect();
        assert_eq!(models.len(), 3, "quick must cover P, Q, and R");
        let families: std::collections::HashSet<_> = s
            .scenarios
            .iter()
            .map(|x| std::mem::discriminant(&x.graph))
            .collect();
        assert!(
            families.len() >= 6,
            "quick must cover >= 6 graph families, got {}",
            families.len()
        );
    }

    #[test]
    fn fptas_backed_cells_reach_algorithm5() {
        // The quick suite's jobcorr `R2` cells must exceed the exact-DP
        // budget (so `auto` lands on the FPTAS), and every `fptas-scaling`
        // `R2` cell must dispatch to Algorithm 5 under its eps configs.
        let quick = suite("quick").unwrap();
        let auto_solver = bisched_core::SolverConfig::new().build().unwrap();
        for scenario in quick
            .scenarios
            .iter()
            .filter(|x| x.name.ends_with("-fptas"))
        {
            let inst = scenario.build();
            let report = auto_solver.solve(&inst).unwrap();
            assert_eq!(
                report.method,
                bisched_core::Method::R2Fptas,
                "{} must be FPTAS-backed under auto, got {}",
                scenario.name,
                report.method
            );
        }
        let fscale = suite("fptas-scaling").unwrap();
        assert_eq!(fscale.configs.len(), 3, "the ε axis");
        for scenario in fscale.scenarios.iter().filter(|x| x.model.alpha() == "R") {
            let inst = scenario.build();
            for config in &fscale.configs {
                let solver = config.config.clone().build().unwrap();
                let report = solver.solve(&inst).unwrap();
                assert_eq!(
                    report.method,
                    bisched_core::Method::R2Fptas,
                    "{}/{} must time Algorithm 5",
                    scenario.name,
                    config.name
                );
            }
        }
    }

    #[test]
    fn gadget_scenarios_build_the_reduction_shape() {
        let s = suite("quick").unwrap();
        let gadget = s
            .scenarios
            .iter()
            .find(|x| matches!(x.graph, GraphFamily::Gadget24No { .. }))
            .unwrap();
        let inst = gadget.build();
        assert!(matches!(
            inst.env(),
            bisched_model::MachineEnvironment::Unrelated { .. }
        ));
        assert!(inst.num_machines() >= 3);
    }
}
