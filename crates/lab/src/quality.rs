//! Solution-quality assessment: how far a schedule sits from the
//! graph-blind lower bound, and — where a complete search is feasible —
//! from the true optimum.

use bisched_exact::{branch_and_bound_with, BnbLimits};
use bisched_model::Instance;
use std::time::Duration;

/// Quality numbers for one solved cell.
#[derive(Clone, Copy, Debug, Default)]
pub struct Quality {
    /// `C_max / LB` against the graph-blind lower bound the report
    /// carries (≥ 1; equality means the bound is tight here).
    pub ratio_lb: f64,
    /// `C_max / C*_max` against a *proven* optimum, when the exact search
    /// completed within its budget.
    pub ratio_opt: Option<f64>,
}

/// Options for the exact-optimum side channel.
#[derive(Clone, Copy, Debug)]
pub struct QualityOptions {
    /// Job-count ceiling above which no exact search is attempted.
    pub exact_cap_jobs: usize,
    /// Branch-and-bound node budget; an incomplete search yields no
    /// `ratio_opt` (an incumbent is not an optimum).
    pub exact_node_limit: u64,
    /// Optional wall-clock budget for the exact search. `None` (the
    /// default) keeps proven-optimum *coverage* hardware-independent:
    /// whether a cell gets a `ratio_opt` then depends only on the
    /// deterministic node budget, so two runs of the same suite always
    /// prove the same cells.
    pub exact_deadline: Option<Duration>,
}

impl Default for QualityOptions {
    fn default() -> Self {
        QualityOptions {
            // The pruned oracle closes 20–24-job cells within the same
            // node budget the seed implementation burned on 20 jobs.
            exact_cap_jobs: 24,
            exact_node_limit: 400_000,
            exact_deadline: None,
        }
    }
}

/// Assesses a solve report against its lower bound and, when feasible,
/// the exact optimum.
pub fn assess(
    inst: &Instance,
    report: &bisched_core::SolveReport,
    opts: &QualityOptions,
) -> Quality {
    let lb = &report.lower_bound;
    let ratio_lb = if lb.num() == 0 {
        1.0
    } else {
        report.makespan.ratio_to(lb)
    };
    let ratio_opt = exact_optimum(inst, opts).map(|opt| report.makespan.ratio_to(&opt));
    Quality {
        ratio_lb,
        ratio_opt,
    }
}

/// A proven optimal makespan, or `None` when the instance is too big or
/// the search budget ran out before completing.
pub fn exact_optimum(inst: &Instance, opts: &QualityOptions) -> Option<bisched_model::Rat> {
    if inst.num_jobs() > opts.exact_cap_jobs {
        return None;
    }
    let limits = BnbLimits {
        node_limit: opts.exact_node_limit,
        deadline: opts.exact_deadline,
    };
    let outcome = branch_and_bound_with(inst, &limits);
    if !outcome.complete {
        return None;
    }
    outcome.optimum.map(|o| o.makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_core::Solver;
    use bisched_graph::Graph;

    #[test]
    fn optimal_solves_score_ratio_one() {
        let inst = Instance::identical(2, vec![3, 3, 2, 2], Graph::path(4)).unwrap();
        let report = Solver::new().solve(&inst).unwrap();
        let q = assess(&inst, &report, &QualityOptions::default());
        assert!(q.ratio_lb >= 1.0 - 1e-9);
        let r = q.ratio_opt.expect("4 jobs is well within the exact cap");
        assert!((r - 1.0).abs() < 1e-9, "optimal engine scored {r}");
    }

    #[test]
    fn cap_suppresses_exact_side_channel() {
        let inst = Instance::identical(2, vec![1; 30], Graph::empty(30)).unwrap();
        let opts = QualityOptions {
            exact_cap_jobs: 10,
            ..QualityOptions::default()
        };
        assert!(exact_optimum(&inst, &opts).is_none());
    }
}
