//! The parallel experiment runner: executes a suite's
//! (scenario × config) matrix with warmup, repetitions, wall-time
//! percentiles, and quality ratios, fanning out over rayon.

use crate::quality::{exact_optimum, QualityOptions};
use crate::report::{CellReport, LabReport, SCHEMA_VERSION};
use crate::scenarios::{NamedConfig, Scenario, Sec4Params, Suite};
use bisched_model::SpeedProfile;
use bisched_random::{alg2_ratio_experiment, random_graph_statistics, Summary};
use rayon::prelude::*;
use std::time::Instant;

/// Runner knobs.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Unmeasured warmup solves per cell.
    pub warmup: usize,
    /// Timed solves per cell.
    pub reps: usize,
    /// Fan cells out over rayon (`false` = sequential, steadier timings).
    pub parallel: bool,
    /// Exact-optimum side channel (see [`QualityOptions`]).
    pub quality: QualityOptions,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            warmup: 1,
            reps: 5,
            parallel: true,
            quality: QualityOptions::default(),
        }
    }
}

/// The `p`-th percentile of a **sorted** sample (nearest-rank; `p` in
/// `[0, 100]`). Returns 0 for an empty sample.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs one suite and assembles the report.
pub fn run_suite(suite: &Suite, opts: &RunOptions) -> LabReport {
    let t0 = Instant::now();
    // Scenario-major: the instance and its (expensive) exact optimum are
    // built once per scenario and shared across that scenario's configs.
    let run_scenario = |scenario: &Scenario| -> Vec<CellReport> {
        let inst = scenario.build();
        let optimum = exact_optimum(&inst, &opts.quality);
        suite
            .configs
            .iter()
            .map(|config| run_cell(scenario, &inst, optimum.as_ref(), config, opts))
            .collect()
    };
    let cells: Vec<CellReport> = if opts.parallel {
        let per_scenario: Vec<Vec<CellReport>> =
            suite.scenarios.par_iter().map(run_scenario).collect();
        per_scenario.into_iter().flatten().collect()
    } else {
        suite.scenarios.iter().flat_map(run_scenario).collect()
    };
    let (sec4_graph, sec4_alg2) = match suite.sec4 {
        Some(params) => {
            let (g, a) = run_sec4(params);
            (Some(g), Some(a))
        }
        None => (None, None),
    };
    let cells = match &suite.service {
        // The service ladder manages its own client concurrency; it runs
        // after the solver cells so the daemons don't compete with rayon
        // for cores mid-measurement.
        Some(params) => {
            let mut cells = cells;
            cells.extend(crate::service_scaling::run_ladder(params));
            cells
        }
        None => cells,
    };
    LabReport {
        schema: SCHEMA_VERSION,
        suite: suite.name.clone(),
        warmup: opts.warmup,
        reps: opts.reps.max(1),
        total_wall_s: t0.elapsed().as_secs_f64(),
        cells,
        sec4_graph,
        sec4_alg2,
    }
}

/// Runs one (scenario × config) cell: warm up, time `reps` solves, and
/// score the solution quality against the shared exact optimum.
fn run_cell(
    scenario: &Scenario,
    inst: &bisched_model::Instance,
    optimum: Option<&bisched_model::Rat>,
    config: &NamedConfig,
    opts: &RunOptions,
) -> CellReport {
    let reps = opts.reps.max(1);
    let mut cell = CellReport {
        scenario: scenario.name.clone(),
        config: config.name.clone(),
        model: scenario.model.alpha().to_string(),
        family: scenario.graph.label(),
        jobs: inst.num_jobs(),
        machines: inst.num_machines(),
        reps,
        mean_ms: 0.0,
        p50_ms: 0.0,
        p90_ms: 0.0,
        max_ms: 0.0,
        makespan: 0.0,
        lower_bound: 0.0,
        ratio_lb: 0.0,
        ratio_opt: None,
        method: String::new(),
        guarantee: String::new(),
        counters: Vec::new(),
        engine_attempts: Vec::new(),
        error: None,
    };
    let solver = match config.config.clone().build() {
        Ok(s) => s,
        Err(e) => {
            cell.error = Some(e.to_string());
            return cell;
        }
    };
    for _ in 0..opts.warmup {
        let _ = solver.solve(inst);
    }
    let mut times_ms = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        let result = solver.solve(inst);
        times_ms.push(t.elapsed().as_secs_f64() * 1e3);
        match result {
            Ok(report) => last = Some(report),
            Err(e) => {
                cell.error = Some(e.to_string());
                return cell;
            }
        }
    }
    let report = last.expect("at least one rep ran");
    times_ms.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
    // Summary (mean/min/max) is the same streaming fold the Section 4.1
    // tables use; percentiles come from the sorted sample.
    let summary = Summary::of(times_ms.iter().copied());
    cell.mean_ms = summary.mean();
    cell.max_ms = summary.max;
    cell.p50_ms = percentile(&times_ms, 50.0);
    cell.p90_ms = percentile(&times_ms, 90.0);
    cell.makespan = report.makespan.to_f64();
    cell.lower_bound = report.lower_bound.to_f64();
    cell.method = report.method.name().to_string();
    cell.guarantee = report.guarantee.to_string();
    cell.ratio_lb = if report.lower_bound.num() == 0 {
        1.0
    } else {
        report.makespan.ratio_to(&report.lower_bound)
    };
    cell.ratio_opt = optimum.map(|opt| report.makespan.ratio_to(opt));
    // Schema v2: the winner's counters and the per-engine attempt
    // counts from the last timed rep (engines are deterministic, so the
    // last rep is representative) — what `lab compare` attributes p50
    // regressions to.
    if let Some(winner) = report.winner_run() {
        cell.counters = winner
            .stats
            .iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect();
    }
    cell.engine_attempts = report
        .attempt_counts()
        .into_iter()
        .map(|(n, c)| (n.to_string(), c))
        .collect();
    cell
}

/// The Section 4.1 reproduction pass: the statistics table over the
/// paper's three regimes (plus the constant regime), and the Algorithm 2
/// ratio table across speed profiles — the lab-suite form of the old
/// `exp_random_*` runners.
fn run_sec4(
    params: Sec4Params,
) -> (
    Vec<bisched_random::RandomGraphRow>,
    Vec<bisched_random::Alg2Row>,
) {
    use bisched_graph::EdgeProbability;
    let regimes = [
        EdgeProbability::SubCritical { exponent: 1.5 },
        EdgeProbability::Critical { a: 1.0 },
        EdgeProbability::Critical { a: 4.0 },
        EdgeProbability::SuperCritical {
            c: 1.0,
            exponent: 0.5,
        },
        EdgeProbability::Constant { p: 0.2 },
    ];
    let stats: Vec<_> = regimes
        .iter()
        .map(|&r| random_graph_statistics(params.n, r, params.seeds, 42))
        .collect();
    let profiles = [
        SpeedProfile::Equal,
        SpeedProfile::Geometric { ratio: 2 },
        SpeedProfile::OneFast { factor: 16 },
    ];
    let alg2: Vec<_> = regimes
        .iter()
        .flat_map(|&r| {
            profiles
                .iter()
                .map(move |&p| alg2_ratio_experiment(params.n, r, p, params.m, params.seeds, 42))
        })
        .collect();
    (stats, alg2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::suite;

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 90.0), 4.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn quick_suite_runs_and_every_cell_solves() {
        let s = suite("quick").unwrap();
        let opts = RunOptions {
            warmup: 0,
            reps: 1,
            parallel: true,
            quality: QualityOptions {
                exact_cap_jobs: 0, // skip the exact side channel for speed
                exact_node_limit: 1,
                ..QualityOptions::default()
            },
        };
        let report = run_suite(&s, &opts);
        assert_eq!(report.cells.len(), s.scenarios.len() * s.configs.len());
        for cell in &report.cells {
            assert!(cell.error.is_none(), "{}: {:?}", cell.key(), cell.error);
            assert!(cell.ratio_lb >= 1.0 - 1e-9, "{} below LB", cell.key());
            assert!(cell.max_ms >= cell.p50_ms);
            assert!(!cell.method.is_empty());
            assert!(
                !cell.engine_attempts.is_empty(),
                "{}: solved cells must record what ran",
                cell.key()
            );
        }
        // Instrumented engines (bnb/cp/fptas) surface their counters.
        assert!(
            report.cells.iter().any(|c| !c.counters.is_empty()),
            "no cell carried winner counters"
        );
        // The matrix covers all three machine models.
        let models: std::collections::HashSet<_> =
            report.cells.iter().map(|c| c.model.clone()).collect();
        assert_eq!(models.len(), 3);
    }
}
