//! The perf-regression gate: `old.json` vs `new.json`, cell by cell.
//!
//! A cell regresses when its median wall time grows by more than the
//! failure threshold (and by more than an absolute noise floor), when its
//! solution quality (`C/LB`) degrades past the quality threshold, when it
//! starts erroring, or when it disappears from the new report. Faster
//! cells are reported as improvements and never fail the gate.

use crate::report::{CellReport, LabReport};
use std::collections::BTreeMap;

/// Gate thresholds.
#[derive(Clone, Copy, Debug)]
pub struct CompareOptions {
    /// Fail when `p50_ms` grows by more than this percentage.
    pub fail_threshold_pct: f64,
    /// Fail when `ratio_lb` grows by more than this percentage.
    pub quality_threshold_pct: f64,
    /// Absolute wall-time growth (ms) below which a cell never fails —
    /// keeps micro-cells from tripping the gate on scheduler jitter.
    pub min_abs_ms: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            fail_threshold_pct: 75.0,
            quality_threshold_pct: 10.0,
            min_abs_ms: 0.02,
        }
    }
}

/// One per-cell finding (regression or improvement).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Cell key (`scenario/config`).
    pub cell: String,
    /// `"p50_ms"`, `"ratio_lb"`, or `"error"`.
    pub metric: String,
    /// Old value.
    pub old: f64,
    /// New value.
    pub new: f64,
    /// Relative change in percent (`(new - old) / old * 100`).
    pub delta_pct: f64,
}

impl Finding {
    fn describe(&self) -> String {
        format!(
            "{:<40} {:>9}  {:>10.4} -> {:>10.4}  ({:+.1}%)",
            self.cell, self.metric, self.old, self.new, self.delta_pct
        )
    }
}

/// The gate's verdict.
#[derive(Clone, Debug, Default)]
pub struct CompareOutcome {
    /// Cells that regressed (time, quality, or new errors).
    pub regressions: Vec<Finding>,
    /// Cells that improved past the same thresholds.
    pub improvements: Vec<Finding>,
    /// Cell keys present in the old report but missing from the new one
    /// (lost coverage — fails the gate).
    pub missing: Vec<String>,
    /// Cell keys new in the new report (fine; noted for the log).
    pub added: Vec<String>,
}

impl CompareOutcome {
    /// `true` when the gate passes (no regressions, no lost coverage).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// The regressions ranked worst-first (by relative change; new
    /// errors, with their infinite delta, sort to the front).
    pub fn worst_regressions(&self, k: usize) -> Vec<&Finding> {
        let mut ranked: Vec<&Finding> = self.regressions.iter().collect();
        ranked.sort_by(|a, b| {
            b.delta_pct
                .partial_cmp(&a.delta_pct)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cell.cmp(&b.cell))
        });
        ranked.truncate(k);
        ranked
    }

    /// Human-readable verdict for CI logs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.regressions.is_empty() {
            // Lead CI readers straight to the worst offenders before the
            // full (unranked) list.
            out.push_str("worst 3:\n");
            for f in self.worst_regressions(3) {
                out.push_str(&format!("  {}\n", f.describe()));
            }
            out.push_str(&format!("REGRESSIONS ({}):\n", self.regressions.len()));
            for f in &self.regressions {
                out.push_str(&format!("  {}\n", f.describe()));
            }
        }
        if !self.missing.is_empty() {
            out.push_str(&format!(
                "MISSING CELLS ({}): {}\n",
                self.missing.len(),
                self.missing.join(", ")
            ));
        }
        if !self.improvements.is_empty() {
            out.push_str(&format!("improvements ({}):\n", self.improvements.len()));
            for f in &self.improvements {
                out.push_str(&format!("  {}\n", f.describe()));
            }
        }
        if !self.added.is_empty() {
            out.push_str(&format!(
                "new cells ({}): {}\n",
                self.added.len(),
                self.added.join(", ")
            ));
        }
        out.push_str(if self.passed() {
            "gate: PASS\n"
        } else {
            "gate: FAIL\n"
        });
        out
    }
}

fn pct(old: f64, new: f64) -> f64 {
    if old <= 0.0 {
        if new <= 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new - old) / old * 100.0
    }
}

/// Compares two reports under the gate thresholds.
pub fn compare(old: &LabReport, new: &LabReport, opts: &CompareOptions) -> CompareOutcome {
    let index = |r: &LabReport| -> BTreeMap<String, CellReport> {
        r.cells.iter().map(|c| (c.key(), c.clone())).collect()
    };
    let old_cells = index(old);
    let new_cells = index(new);
    let mut outcome = CompareOutcome::default();
    for key in new_cells.keys() {
        if !old_cells.contains_key(key) {
            outcome.added.push(key.clone());
        }
    }
    for (key, o) in &old_cells {
        let Some(n) = new_cells.get(key) else {
            outcome.missing.push(key.clone());
            continue;
        };
        match (&o.error, &n.error) {
            (None, Some(_)) => {
                // A cell that used to solve and now errors is the worst
                // regression there is.
                outcome.regressions.push(Finding {
                    cell: key.clone(),
                    metric: "error".into(),
                    old: 0.0,
                    new: 1.0,
                    delta_pct: f64::INFINITY,
                });
                continue;
            }
            (Some(_), _) => continue, // was already broken; nothing to gate
            (None, None) => {}
        }
        let time_delta = pct(o.p50_ms, n.p50_ms);
        let time_finding = Finding {
            cell: key.clone(),
            metric: "p50_ms".into(),
            old: o.p50_ms,
            new: n.p50_ms,
            delta_pct: time_delta,
        };
        // A shrink can never pass -100%, so a generous fail threshold
        // (CI uses several hundred percent) must not silence the
        // improvement log; cap the improvement side at -50%.
        let improve_threshold_pct = opts.fail_threshold_pct.min(50.0);
        if time_delta > opts.fail_threshold_pct && n.p50_ms - o.p50_ms > opts.min_abs_ms {
            outcome.regressions.push(time_finding);
        } else if time_delta < -improve_threshold_pct && o.p50_ms - n.p50_ms > opts.min_abs_ms {
            outcome.improvements.push(time_finding);
        }
        let q_delta = pct(o.ratio_lb, n.ratio_lb);
        if q_delta > opts.quality_threshold_pct {
            outcome.regressions.push(Finding {
                cell: key.clone(),
                metric: "ratio_lb".into(),
                old: o.ratio_lb,
                new: n.ratio_lb,
                delta_pct: q_delta,
            });
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SCHEMA_VERSION;

    fn cell(key: &str, p50: f64, ratio: f64) -> CellReport {
        CellReport {
            scenario: key.into(),
            config: "auto".into(),
            model: "P".into(),
            family: "K{2,2}".into(),
            jobs: 4,
            machines: 2,
            reps: 3,
            mean_ms: p50,
            p50_ms: p50,
            p90_ms: p50 * 1.2,
            max_ms: p50 * 1.5,
            makespan: 10.0 * ratio,
            lower_bound: 10.0,
            ratio_lb: ratio,
            ratio_opt: None,
            method: "alg1".into(),
            guarantee: "heuristic".into(),
            error: None,
        }
    }

    fn report(cells: Vec<CellReport>) -> LabReport {
        LabReport {
            schema: SCHEMA_VERSION,
            suite: "quick".into(),
            warmup: 1,
            reps: 3,
            total_wall_s: 1.0,
            cells,
            sec4_graph: None,
            sec4_alg2: None,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(vec![cell("a", 1.0, 1.1), cell("b", 0.2, 1.0)]);
        let out = compare(&r, &r, &CompareOptions::default());
        assert!(out.passed(), "{}", out.render());
        assert!(out.regressions.is_empty() && out.missing.is_empty());
    }

    #[test]
    fn doubled_times_fail_the_default_gate() {
        let old = report(vec![cell("a", 1.0, 1.1), cell("b", 0.2, 1.0)]);
        let mut degraded = old.clone();
        for c in &mut degraded.cells {
            c.p50_ms *= 2.0; // the synthetic 2x-slower copy
            c.mean_ms *= 2.0;
        }
        let out = compare(&old, &degraded, &CompareOptions::default());
        assert!(!out.passed());
        assert_eq!(out.regressions.len(), 2);
        assert!(out.render().contains("FAIL"));
    }

    #[test]
    fn small_jitter_under_the_noise_floor_passes() {
        let old = report(vec![cell("a", 0.001, 1.0)]);
        let new = report(vec![cell("a", 0.0025, 1.0)]); // +150% but 1.5 us
        let out = compare(&old, &new, &CompareOptions::default());
        assert!(out.passed(), "{}", out.render());
    }

    #[test]
    fn quality_degradation_fails_independently_of_time() {
        let old = report(vec![cell("a", 1.0, 1.1)]);
        let new = report(vec![cell("a", 1.0, 1.5)]);
        let out = compare(&old, &new, &CompareOptions::default());
        assert!(!out.passed());
        assert_eq!(out.regressions[0].metric, "ratio_lb");
    }

    #[test]
    fn missing_and_errored_cells_fail_added_cells_pass() {
        let old = report(vec![cell("a", 1.0, 1.0), cell("b", 1.0, 1.0)]);
        let mut new = report(vec![cell("a", 1.0, 1.0), cell("c", 1.0, 1.0)]);
        let out = compare(&old, &new, &CompareOptions::default());
        assert!(!out.passed());
        assert_eq!(out.missing, vec!["b/auto".to_string()]);
        assert_eq!(out.added, vec!["c/auto".to_string()]);

        new = report(vec![cell("a", 1.0, 1.0), cell("b", 1.0, 1.0)]);
        new.cells[1].error = Some("boom".into());
        let out = compare(&old, &new, &CompareOptions::default());
        assert!(!out.passed());
        assert_eq!(out.regressions[0].metric, "error");
    }

    #[test]
    fn worst_regressions_rank_errors_first_and_cap_at_three() {
        let old = report(vec![
            cell("a", 1.0, 1.0),
            cell("b", 1.0, 1.0),
            cell("c", 1.0, 1.0),
            cell("d", 1.0, 1.0),
        ]);
        let mut new = report(vec![
            cell("a", 3.0, 1.0),  // +200%
            cell("b", 10.0, 1.0), // +900%
            cell("c", 2.5, 1.0),  // +150%
            cell("d", 1.0, 1.0),
        ]);
        new.cells[3].error = Some("boom".into());
        let out = compare(&old, &new, &CompareOptions::default());
        assert!(!out.passed());
        assert_eq!(out.regressions.len(), 4);
        let worst = out.worst_regressions(3);
        assert_eq!(worst.len(), 3);
        assert_eq!(worst[0].cell, "d/auto"); // infinite delta first
        assert_eq!(worst[1].cell, "b/auto");
        assert_eq!(worst[2].cell, "a/auto");
        let rendered = out.render();
        assert!(rendered.contains("worst 3:"), "{rendered}");
    }

    #[test]
    fn improvements_are_reported_not_failed() {
        let old = report(vec![cell("a", 2.0, 1.0)]);
        let new = report(vec![cell("a", 0.4, 1.0)]);
        let out = compare(&old, &new, &CompareOptions::default());
        assert!(out.passed());
        assert_eq!(out.improvements.len(), 1);
    }
}
