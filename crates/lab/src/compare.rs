//! The perf-regression gate: `old.json` vs `new.json`, cell by cell.
//!
//! A cell regresses when its median wall time grows by more than the
//! failure threshold (and by more than an absolute noise floor), when its
//! solution quality (`C/LB`) degrades past the quality threshold, when it
//! starts erroring, or when it disappears from the new report. Faster
//! cells are reported as improvements and never fail the gate.

use crate::report::{CellReport, LabReport};
use std::collections::BTreeMap;

/// Gate thresholds.
#[derive(Clone, Copy, Debug)]
pub struct CompareOptions {
    /// Fail when `p50_ms` grows by more than this percentage.
    pub fail_threshold_pct: f64,
    /// Fail when `ratio_lb` grows by more than this percentage.
    pub quality_threshold_pct: f64,
    /// Absolute wall-time growth (ms) below which a cell never fails —
    /// keeps micro-cells from tripping the gate on scheduler jitter.
    pub min_abs_ms: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            fail_threshold_pct: 75.0,
            quality_threshold_pct: 10.0,
            min_abs_ms: 0.02,
        }
    }
}

/// One per-cell finding (regression or improvement).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Cell key (`scenario/config`).
    pub cell: String,
    /// `"p50_ms"`, `"ratio_lb"`, or `"error"`.
    pub metric: String,
    /// Old value.
    pub old: f64,
    /// New value.
    pub new: f64,
    /// Relative change in percent (`(new - old) / old * 100`).
    pub delta_pct: f64,
    /// Counter attribution: what the winning engine did differently
    /// (`bnb_nodes 46k→412k, prunes/node 0.71→0.22`), built from the
    /// cells' schema-v2 `counters`. Empty when neither side carries
    /// counters (v1 vs v1).
    pub attribution: String,
}

impl Finding {
    fn describe(&self) -> String {
        let mut line = format!(
            "{:<40} {:>9}  {:>10.4} -> {:>10.4}  ({:+.1}%)",
            self.cell, self.metric, self.old, self.new, self.delta_pct
        );
        if !self.attribution.is_empty() {
            line.push_str(" · ");
            line.push_str(&self.attribution);
        }
        line
    }
}

/// Humane counter formatting: `46213` → `46k`, `1234567` → `1.2M`.
fn fmt_count(v: u64) -> String {
    if v >= 10_000_000 {
        format!("{}M", v / 1_000_000)
    } else if v >= 1_000_000 {
        format!("{:.1}M", v as f64 / 1e6)
    } else if v >= 10_000 {
        format!("{}k", v / 1_000)
    } else if v >= 1_000 {
        format!("{:.1}k", v as f64 / 1e3)
    } else {
        v.to_string()
    }
}

/// Explains a cell's change through its engine-counter deltas: method
/// switch, the largest counter moves (≥ 20% and non-trivial absolute
/// change, worst first, capped at four), and the derived prunes/node
/// ratio for tree-search engines — "what did the engine do differently",
/// next to "how much slower" in the finding line.
fn attribute(o: &CellReport, n: &CellReport) -> String {
    let mut parts: Vec<String> = Vec::new();
    if o.method != n.method && !o.method.is_empty() && !n.method.is_empty() {
        parts.push(format!("method {}→{}", o.method, n.method));
    }
    let old_counters: BTreeMap<&str, u64> =
        o.counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let new_counters: BTreeMap<&str, u64> =
        n.counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    // Largest relative movers first; a counter missing on one side (an
    // engine change, or a v1 baseline) is shown as `—`.
    let mut moves: Vec<(f64, String)> = Vec::new();
    for (name, &nv) in &new_counters {
        match old_counters.get(name) {
            Some(&ov) => {
                let ratio = nv.max(1) as f64 / ov.max(1) as f64;
                let magnitude = ratio.max(1.0 / ratio);
                if magnitude >= 1.2 && nv.abs_diff(ov) >= 8 {
                    parts_push_move(&mut moves, magnitude, name, fmt_count(ov), fmt_count(nv));
                }
            }
            None if nv > 0 => {
                parts_push_move(&mut moves, 1.0, name, "—".into(), fmt_count(nv));
            }
            None => {}
        }
    }
    for (name, &ov) in &old_counters {
        if !new_counters.contains_key(name) && ov > 0 {
            parts_push_move(&mut moves, 1.0, name, fmt_count(ov), "—".into());
        }
    }
    moves.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    moves.truncate(4);
    parts.extend(moves.into_iter().map(|(_, s)| s));
    // Derived pruning efficiency: total prunes per explored node. A
    // regression that explores 9x the nodes at a third of the prune
    // rate is a search-ordering problem, not a slow evaluator.
    if let (Some(old_ppn), Some(new_ppn)) = (prunes_per_node(o), prunes_per_node(n)) {
        if old_ppn > 0.0 && (new_ppn / old_ppn).max(old_ppn / new_ppn.max(1e-12)) >= 1.2 {
            parts.push(format!("prunes/node {old_ppn:.2}→{new_ppn:.2}"));
        }
    }
    parts.join(", ")
}

fn parts_push_move(
    moves: &mut Vec<(f64, String)>,
    magnitude: f64,
    name: &str,
    o: String,
    n: String,
) {
    moves.push((magnitude, format!("{name} {o}→{n}")));
}

/// `(sum of prunes_* counters) / nodes`, when the cell's winner
/// reported a node count.
fn prunes_per_node(c: &CellReport) -> Option<f64> {
    let nodes = c
        .counters
        .iter()
        .find(|(k, _)| k == "nodes")
        .map(|&(_, v)| v)?;
    if nodes == 0 {
        return None;
    }
    let prunes: u64 = c
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("prunes"))
        .map(|&(_, v)| v)
        .sum();
    Some(prunes as f64 / nodes as f64)
}

/// The gate's verdict.
#[derive(Clone, Debug, Default)]
pub struct CompareOutcome {
    /// Cells that regressed (time, quality, or new errors).
    pub regressions: Vec<Finding>,
    /// Cells that improved past the same thresholds.
    pub improvements: Vec<Finding>,
    /// Cell keys present in the old report but missing from the new one
    /// (lost coverage — fails the gate).
    pub missing: Vec<String>,
    /// Cell keys new in the new report (fine; noted for the log).
    pub added: Vec<String>,
}

impl CompareOutcome {
    /// `true` when the gate passes (no regressions, no lost coverage).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// The regressions ranked worst-first (by relative change; new
    /// errors, with their infinite delta, sort to the front).
    pub fn worst_regressions(&self, k: usize) -> Vec<&Finding> {
        let mut ranked: Vec<&Finding> = self.regressions.iter().collect();
        ranked.sort_by(|a, b| {
            b.delta_pct
                .partial_cmp(&a.delta_pct)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cell.cmp(&b.cell))
        });
        ranked.truncate(k);
        ranked
    }

    /// Human-readable verdict for CI logs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.regressions.is_empty() {
            // Lead CI readers straight to the worst offenders before the
            // full (unranked) list.
            out.push_str("worst 3:\n");
            for f in self.worst_regressions(3) {
                out.push_str(&format!("  {}\n", f.describe()));
            }
            out.push_str(&format!("REGRESSIONS ({}):\n", self.regressions.len()));
            for f in &self.regressions {
                out.push_str(&format!("  {}\n", f.describe()));
            }
        }
        if !self.missing.is_empty() {
            out.push_str(&format!(
                "MISSING CELLS ({}): {}\n",
                self.missing.len(),
                self.missing.join(", ")
            ));
        }
        if !self.improvements.is_empty() {
            out.push_str(&format!("improvements ({}):\n", self.improvements.len()));
            for f in &self.improvements {
                out.push_str(&format!("  {}\n", f.describe()));
            }
        }
        if !self.added.is_empty() {
            out.push_str(&format!(
                "new cells ({}): {}\n",
                self.added.len(),
                self.added.join(", ")
            ));
        }
        out.push_str(if self.passed() {
            "gate: PASS\n"
        } else {
            "gate: FAIL\n"
        });
        out
    }
}

fn pct(old: f64, new: f64) -> f64 {
    if old <= 0.0 {
        if new <= 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (new - old) / old * 100.0
    }
}

/// Compares two reports under the gate thresholds.
pub fn compare(old: &LabReport, new: &LabReport, opts: &CompareOptions) -> CompareOutcome {
    let index = |r: &LabReport| -> BTreeMap<String, CellReport> {
        r.cells.iter().map(|c| (c.key(), c.clone())).collect()
    };
    let old_cells = index(old);
    let new_cells = index(new);
    let mut outcome = CompareOutcome::default();
    for key in new_cells.keys() {
        if !old_cells.contains_key(key) {
            outcome.added.push(key.clone());
        }
    }
    for (key, o) in &old_cells {
        let Some(n) = new_cells.get(key) else {
            outcome.missing.push(key.clone());
            continue;
        };
        // One attribution per cell pair; every finding for the cell
        // carries it, so even the ranked worst-3 excerpt explains itself.
        let attribution = attribute(o, n);
        match (&o.error, &n.error) {
            (None, Some(_)) => {
                // A cell that used to solve and now errors is the worst
                // regression there is.
                outcome.regressions.push(Finding {
                    cell: key.clone(),
                    metric: "error".into(),
                    old: 0.0,
                    new: 1.0,
                    delta_pct: f64::INFINITY,
                    attribution,
                });
                continue;
            }
            (Some(_), _) => continue, // was already broken; nothing to gate
            (None, None) => {}
        }
        let time_delta = pct(o.p50_ms, n.p50_ms);
        let time_finding = Finding {
            cell: key.clone(),
            metric: "p50_ms".into(),
            old: o.p50_ms,
            new: n.p50_ms,
            delta_pct: time_delta,
            attribution: attribution.clone(),
        };
        // A shrink can never pass -100%, so a generous fail threshold
        // (CI uses several hundred percent) must not silence the
        // improvement log; cap the improvement side at -50%.
        let improve_threshold_pct = opts.fail_threshold_pct.min(50.0);
        if time_delta > opts.fail_threshold_pct && n.p50_ms - o.p50_ms > opts.min_abs_ms {
            outcome.regressions.push(time_finding);
        } else if time_delta < -improve_threshold_pct && o.p50_ms - n.p50_ms > opts.min_abs_ms {
            outcome.improvements.push(time_finding);
        }
        let q_delta = pct(o.ratio_lb, n.ratio_lb);
        if q_delta > opts.quality_threshold_pct {
            outcome.regressions.push(Finding {
                cell: key.clone(),
                metric: "ratio_lb".into(),
                old: o.ratio_lb,
                new: n.ratio_lb,
                delta_pct: q_delta,
                attribution,
            });
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SCHEMA_VERSION;

    fn cell(key: &str, p50: f64, ratio: f64) -> CellReport {
        CellReport {
            scenario: key.into(),
            config: "auto".into(),
            model: "P".into(),
            family: "K{2,2}".into(),
            jobs: 4,
            machines: 2,
            reps: 3,
            mean_ms: p50,
            p50_ms: p50,
            p90_ms: p50 * 1.2,
            max_ms: p50 * 1.5,
            makespan: 10.0 * ratio,
            lower_bound: 10.0,
            ratio_lb: ratio,
            ratio_opt: None,
            method: "alg1".into(),
            guarantee: "heuristic".into(),
            counters: Vec::new(),
            engine_attempts: Vec::new(),
            error: None,
        }
    }

    fn counters(c: &mut CellReport, method: &str, pairs: &[(&str, u64)]) {
        c.method = method.into();
        c.counters = pairs.iter().map(|&(k, v)| (k.into(), v)).collect();
        c.engine_attempts = vec![(method.into(), 1)];
    }

    fn report(cells: Vec<CellReport>) -> LabReport {
        LabReport {
            schema: SCHEMA_VERSION,
            suite: "quick".into(),
            warmup: 1,
            reps: 3,
            total_wall_s: 1.0,
            cells,
            sec4_graph: None,
            sec4_alg2: None,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(vec![cell("a", 1.0, 1.1), cell("b", 0.2, 1.0)]);
        let out = compare(&r, &r, &CompareOptions::default());
        assert!(out.passed(), "{}", out.render());
        assert!(out.regressions.is_empty() && out.missing.is_empty());
    }

    #[test]
    fn doubled_times_fail_the_default_gate() {
        let old = report(vec![cell("a", 1.0, 1.1), cell("b", 0.2, 1.0)]);
        let mut degraded = old.clone();
        for c in &mut degraded.cells {
            c.p50_ms *= 2.0; // the synthetic 2x-slower copy
            c.mean_ms *= 2.0;
        }
        let out = compare(&old, &degraded, &CompareOptions::default());
        assert!(!out.passed());
        assert_eq!(out.regressions.len(), 2);
        assert!(out.render().contains("FAIL"));
    }

    #[test]
    fn small_jitter_under_the_noise_floor_passes() {
        let old = report(vec![cell("a", 0.001, 1.0)]);
        let new = report(vec![cell("a", 0.0025, 1.0)]); // +150% but 1.5 us
        let out = compare(&old, &new, &CompareOptions::default());
        assert!(out.passed(), "{}", out.render());
    }

    #[test]
    fn quality_degradation_fails_independently_of_time() {
        let old = report(vec![cell("a", 1.0, 1.1)]);
        let new = report(vec![cell("a", 1.0, 1.5)]);
        let out = compare(&old, &new, &CompareOptions::default());
        assert!(!out.passed());
        assert_eq!(out.regressions[0].metric, "ratio_lb");
    }

    #[test]
    fn missing_and_errored_cells_fail_added_cells_pass() {
        let old = report(vec![cell("a", 1.0, 1.0), cell("b", 1.0, 1.0)]);
        let mut new = report(vec![cell("a", 1.0, 1.0), cell("c", 1.0, 1.0)]);
        let out = compare(&old, &new, &CompareOptions::default());
        assert!(!out.passed());
        assert_eq!(out.missing, vec!["b/auto".to_string()]);
        assert_eq!(out.added, vec!["c/auto".to_string()]);

        new = report(vec![cell("a", 1.0, 1.0), cell("b", 1.0, 1.0)]);
        new.cells[1].error = Some("boom".into());
        let out = compare(&old, &new, &CompareOptions::default());
        assert!(!out.passed());
        assert_eq!(out.regressions[0].metric, "error");
    }

    #[test]
    fn worst_regressions_rank_errors_first_and_cap_at_three() {
        let old = report(vec![
            cell("a", 1.0, 1.0),
            cell("b", 1.0, 1.0),
            cell("c", 1.0, 1.0),
            cell("d", 1.0, 1.0),
        ]);
        let mut new = report(vec![
            cell("a", 3.0, 1.0),  // +200%
            cell("b", 10.0, 1.0), // +900%
            cell("c", 2.5, 1.0),  // +150%
            cell("d", 1.0, 1.0),
        ]);
        new.cells[3].error = Some("boom".into());
        let out = compare(&old, &new, &CompareOptions::default());
        assert!(!out.passed());
        assert_eq!(out.regressions.len(), 4);
        let worst = out.worst_regressions(3);
        assert_eq!(worst.len(), 3);
        assert_eq!(worst[0].cell, "d/auto"); // infinite delta first
        assert_eq!(worst[1].cell, "b/auto");
        assert_eq!(worst[2].cell, "a/auto");
        let rendered = out.render();
        assert!(rendered.contains("worst 3:"), "{rendered}");
    }

    #[test]
    fn improvements_are_reported_not_failed() {
        let old = report(vec![cell("a", 2.0, 1.0)]);
        let new = report(vec![cell("a", 0.4, 1.0)]);
        let out = compare(&old, &new, &CompareOptions::default());
        assert!(out.passed());
        assert_eq!(out.improvements.len(), 1);
    }

    #[test]
    fn regressions_name_their_counter_deltas() {
        let mut old = report(vec![cell("a", 1.0, 1.0)]);
        counters(
            &mut old.cells[0],
            "branch-and-bound",
            &[("nodes", 46_213), ("prunes_incumbent", 33_107)],
        );
        let mut new = report(vec![cell("a", 3.0, 1.0)]); // +200%
        counters(
            &mut new.cells[0],
            "branch-and-bound",
            &[("nodes", 412_345), ("prunes_incumbent", 91_000)],
        );
        let out = compare(&old, &new, &CompareOptions::default());
        assert!(!out.passed());
        let f = &out.regressions[0];
        assert!(
            f.attribution.contains("nodes 46k→412k"),
            "{}",
            f.attribution
        );
        // 33107/46213 = 0.72 vs 91000/412345 = 0.22: pruning collapsed.
        assert!(
            f.attribution.contains("prunes/node 0.72→0.22"),
            "{}",
            f.attribution
        );
        let line = out.render();
        assert!(line.contains(" · nodes 46k→412k"), "{line}");
    }

    #[test]
    fn method_switch_is_attributed_and_orphan_counters_marked() {
        let mut old = report(vec![cell("a", 1.0, 1.0)]);
        counters(&mut old.cells[0], "alg1", &[]);
        let mut new = report(vec![cell("a", 5.0, 1.0)]);
        counters(&mut new.cells[0], "cp", &[("propagations", 120_000)]);
        let out = compare(&old, &new, &CompareOptions::default());
        let f = &out.regressions[0];
        assert!(
            f.attribution.contains("method alg1→cp"),
            "{}",
            f.attribution
        );
        assert!(
            f.attribution.contains("propagations —→120k"),
            "{}",
            f.attribution
        );
    }

    #[test]
    fn v1_baselines_without_counters_do_not_break_attribution() {
        // v1 vs v1: no counters anywhere — the finding renders without a
        // dangling separator.
        let old = report(vec![cell("a", 1.0, 1.0)]);
        let mut new = report(vec![cell("a", 3.0, 1.0)]);
        new.cells[0].method = "alg1".into();
        let out = compare(&old, &new, &CompareOptions::default());
        assert_eq!(out.regressions[0].attribution, "");
        assert!(!out.regressions[0].describe().contains(" · "));

        // v1 baseline vs v2 candidate: new-side counters still show up.
        let mut new2 = report(vec![cell("a", 3.0, 1.0)]);
        counters(&mut new2.cells[0], "alg1", &[("nodes", 500)]);
        let out = compare(&old, &new2, &CompareOptions::default());
        assert!(
            out.regressions[0].attribution.contains("nodes —→500"),
            "{}",
            out.regressions[0].attribution
        );
    }

    #[test]
    fn attribution_ignores_noise_and_caps_the_mover_list() {
        let mut old = report(vec![cell("a", 1.0, 1.0)]);
        counters(
            &mut old.cells[0],
            "branch-and-bound",
            &[
                ("a1", 100),
                ("a2", 100),
                ("a3", 100),
                ("a4", 100),
                ("a5", 100),
                ("steady", 1_000),
                ("tiny", 2),
            ],
        );
        let mut new = report(vec![cell("a", 3.0, 1.0)]);
        counters(
            &mut new.cells[0],
            "branch-and-bound",
            &[
                ("a1", 200),
                ("a2", 300),
                ("a3", 400),
                ("a4", 500),
                ("a5", 600),
                ("steady", 1_050), // +5%: below the 20% bar
                ("tiny", 4),       // 2x but abs delta 2: noise
            ],
        );
        let out = compare(&old, &new, &CompareOptions::default());
        let attr = &out.regressions[0].attribution;
        // Worst four movers only, largest first.
        assert!(attr.starts_with("a5 100→600"), "{attr}");
        assert!(attr.contains("a2 100→300"), "{attr}");
        assert!(!attr.contains("a1"), "{attr}");
        assert!(!attr.contains("steady"), "{attr}");
        assert!(!attr.contains("tiny"), "{attr}");
    }
}
