//! Algorithm 1: the `√(Σp_j)`-approximation for `Q | G = bipartite | C_max`
//! (Theorem 9) — best possible up to constants by the Theorem 8
//! inapproximability bound.
//!
//! Outline (numbering follows the paper's listing):
//!
//! 1. `Σp_j ≤ 4`: brute force.
//! 2. `I` := a maximum-weight independent set containing every *big* job
//!    (`p_j ≥ √Σp_j`), if the big jobs are independent.
//! 3. `S1` := Algorithm 5 (the `R2` FPTAS) on the two fastest machines with
//!    `ε = 1` — the fallback that is already `√Σp_j`-good whenever the
//!    optimum is concentrated on `M_1, M_2`.
//! 4. (Steps 4–10.) If `I` exists: compute the `C**_max` lower bound,
//!    carve the machines at time `C**_max` into `M_2..M_{k'}` /
//!    `M_{k'+1}..M_k` / `M_1 ∪ M_{k+1}..M_m`, and list-schedule the
//!    inequitable-coloring classes of `J ∖ I` and `I` onto those groups
//!    (`S2`).
//! 5. (Step 12.) Return the better of `S1`, `S2`.

use bisched_exact::{branch_and_bound, OracleError};
use bisched_graph::{inequitable_coloring_weighted, max_weight_is_containing};
use bisched_model::{
    assign_min_completion_uniform, cstar_double_max, floor_capacities, lpt_order, Instance,
    MachineEnvironment, Rat, Schedule,
};

use crate::r2_fptas::r2_fptas;

/// Result of Algorithm 1 with provenance for experiments.
#[derive(Clone, Debug)]
pub struct Alg1Result {
    /// The returned schedule.
    pub schedule: Schedule,
    /// Its makespan.
    pub makespan: Rat,
    /// The exact `C**_max` lower bound (when the main path ran).
    pub cstar_lower: Option<Rat>,
    /// Which candidate won: `"brute"`, `"S1"` or `"S2"`.
    pub winner: &'static str,
    /// Makespan of the `S1` candidate (the two-machine FPTAS), when
    /// computed — ablation experiments compare the candidates.
    pub s1_makespan: Option<Rat>,
    /// Makespan of the `S2` candidate (the machine-carving path), when it
    /// was constructed.
    pub s2_makespan: Option<Rat>,
}

/// Errors of Algorithm 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Alg1Error {
    /// `G` is not bipartite.
    NotBipartite,
    /// The environment is unrelated (`R`) — Algorithm 1 is for `Q`/`P`.
    WrongEnvironment,
    /// One machine and at least one incompatibility: no schedule exists.
    Infeasible,
}

impl std::fmt::Display for Alg1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Alg1Error::NotBipartite => write!(f, "incompatibility graph is not bipartite"),
            Alg1Error::WrongEnvironment => {
                write!(f, "Algorithm 1 handles uniform/identical machines only")
            }
            Alg1Error::Infeasible => write!(f, "no feasible schedule (m = 1 with an edge)"),
        }
    }
}

impl std::error::Error for Alg1Error {}

/// Algorithm 1 for `Q | G = bipartite | C_max` (also accepts `P`).
pub fn alg1_sqrt_approx(inst: &Instance) -> Result<Alg1Result, Alg1Error> {
    let speeds = match inst.env() {
        MachineEnvironment::Unrelated { .. } => return Err(Alg1Error::WrongEnvironment),
        _ => inst.speeds(),
    };
    let n = inst.num_jobs();
    let m = speeds.len();
    let g = inst.graph();
    if !bisched_graph::is_bipartite(g) {
        return Err(Alg1Error::NotBipartite);
    }
    if n == 0 {
        return Ok(Alg1Result {
            schedule: Schedule::new(Vec::new()),
            makespan: Rat::ZERO,
            cstar_lower: Some(Rat::ZERO),
            winner: "brute",
            s1_makespan: None,
            s2_makespan: None,
        });
    }
    if m == 1 {
        if g.num_edges() > 0 {
            return Err(Alg1Error::Infeasible);
        }
        let schedule = Schedule::new(vec![0; n]);
        let makespan = schedule.makespan(inst);
        return Ok(Alg1Result {
            schedule,
            makespan,
            cstar_lower: Some(makespan),
            winner: "brute",
            s1_makespan: None,
            s2_makespan: None,
        });
    }

    let total: u64 = inst.total_processing();

    // Step 1: tiny instances by brute force (Σp_j ≤ 4 ⇒ n ≤ 4, and only
    // the min(m, n) fastest machines can matter on uniform speeds).
    if total <= 4 {
        let used = m.min(n).max(2);
        let small = Instance::uniform(
            speeds[..used].to_vec(),
            inst.processing_all().to_vec(),
            g.clone(),
        )
        .expect("validated components");
        let out = branch_and_bound(&small, u64::MAX);
        let opt = out.optimum.expect("bipartite on >= 2 machines is feasible");
        return Ok(Alg1Result {
            makespan: opt.makespan,
            schedule: opt.schedule,
            cstar_lower: Some(opt.makespan),
            winner: "brute",
            s1_makespan: None,
            s2_makespan: None,
        });
    }

    // Step 2: the big jobs (p_j² ≥ Σp_j, i.e. p_j ≥ √Σp_j) and the
    // max-weight independent set containing them all, if any.
    let big: Vec<u32> = (0..n as u32)
        .filter(|&j| {
            let p = inst.processing(j) as u128;
            p * p >= total as u128
        })
        .collect();
    let independent_i = max_weight_is_containing(g, inst.processing_all(), &big);

    // Step 3: S1 — Algorithm 5 on the two fastest machines with ε = 1.
    let s1 = schedule_s1(inst, &speeds)?;
    let s1_makespan = s1.makespan(inst);

    let mut best = Alg1Result {
        schedule: s1,
        makespan: s1_makespan,
        cstar_lower: None,
        winner: "S1",
        s1_makespan: Some(s1_makespan),
        s2_makespan: None,
    };

    // Steps 4–10: S2, only when I exists and there are spare machines.
    if let Some(iset) = independent_i {
        if m >= 3 {
            let uncovered = total - iset.weight;
            let pmax = inst.max_processing();
            let cstar = cstar_double_max(&speeds, total, uncovered, pmax);
            best.cstar_lower = Some(cstar);
            let caps = floor_capacities(&speeds, &cstar);

            // Step 7: least k ≥ 3 with caps(M_2..M_k) covering J ∖ I.
            let mut k = 3usize;
            let mut cum: u64 = caps[1..k].iter().sum();
            while cum < uncovered && k < m {
                cum += caps[k];
                k += 1;
            }
            if cum >= uncovered {
                // Step 8: inequitable coloring of J ∖ I by weight.
                let mut in_i = vec![false; n];
                for &v in &iset.vertices {
                    in_i[v as usize] = true;
                }
                let (rest_graph, remap) =
                    g.induced_subgraph(&in_i.iter().map(|&b| !b).collect::<Vec<_>>());
                let rest_weights: Vec<u64> = (0..n)
                    .filter(|&v| !in_i[v])
                    .map(|v| inst.processing(v as u32))
                    .collect();
                let coloring = inequitable_coloring_weighted(&rest_graph, &rest_weights)
                    .expect("subgraph of a bipartite graph is bipartite");
                // Map color classes back to original ids.
                let mut back = vec![u32::MAX; rest_graph.num_vertices()];
                for v in 0..n {
                    if !in_i[v] {
                        back[remap[v] as usize] = v as u32;
                    }
                }
                let j1: Vec<u32> = coloring.major().iter().map(|&v| back[v as usize]).collect();
                let j2: Vec<u32> = coloring.minor().iter().map(|&v| back[v as usize]).collect();
                let w1: u64 = j1.iter().map(|&v| inst.processing(v)).sum();

                // Step 9: biggest k' with caps(M_2..M_{k'}) ≤ Σ_{J'_1} p_j.
                let mut kp = 2usize;
                let mut cum2 = caps[1];
                while kp < k && cum2 + caps[kp] <= w1 {
                    cum2 += caps[kp];
                    kp += 1;
                }
                // J'_2 must get a non-empty group when non-empty.
                if kp >= k && !j2.is_empty() {
                    kp = k - 1;
                }

                // Step 10: three machine groups (0-based indices).
                let group_j1: Vec<u32> = (1..kp as u32).collect();
                let group_j2: Vec<u32> = (kp as u32..k as u32).collect();
                let mut group_i: Vec<u32> = vec![0];
                group_i.extend(k as u32..m as u32);

                let mut loads = vec![0u64; m];
                let mut assignment = vec![u32::MAX; n];
                let p = inst.processing_all();
                assign_min_completion_uniform(
                    &speeds,
                    p,
                    &lpt_order(p, &j1),
                    &group_j1,
                    &mut loads,
                    &mut assignment,
                );
                assign_min_completion_uniform(
                    &speeds,
                    p,
                    &lpt_order(p, &j2),
                    &group_j2,
                    &mut loads,
                    &mut assignment,
                );
                assign_min_completion_uniform(
                    &speeds,
                    p,
                    &lpt_order(p, &iset.vertices),
                    &group_i,
                    &mut loads,
                    &mut assignment,
                );
                let s2 = Schedule::new(assignment);
                debug_assert!(s2.validate(inst).is_ok());
                let s2_makespan = s2.makespan(inst);
                best.s2_makespan = Some(s2_makespan);
                if s2_makespan < best.makespan {
                    best.schedule = s2;
                    best.makespan = s2_makespan;
                    best.winner = "S2";
                }
            }
        }
    }
    Ok(best)
}

/// Step 3: `S1` — project onto the two fastest machines and run the `R2`
/// FPTAS with `ε = 1`. The `Q2 → R2` projection scales times by
/// `s_1 · s_2` to stay integral: `p_{1,j} = p_j · s_2`, `p_{2,j} = p_j · s_1`.
fn schedule_s1(inst: &Instance, speeds: &[u64]) -> Result<Schedule, Alg1Error> {
    let n = inst.num_jobs();
    let (s1, s2) = (speeds[0], speeds[1]);
    let times: Vec<Vec<u64>> = vec![
        (0..n)
            .map(|j| inst.processing(j as u32).checked_mul(s2).expect("overflow"))
            .collect(),
        (0..n)
            .map(|j| inst.processing(j as u32).checked_mul(s1).expect("overflow"))
            .collect(),
    ];
    let r2 = Instance::unrelated(times, inst.graph().clone()).expect("validated projection");
    let schedule = r2_fptas(&r2, 1.0).map_err(|e| match e {
        OracleError::NotBipartite => Alg1Error::NotBipartite,
        _ => unreachable!("projection is a valid R2 instance"),
    })?;
    debug_assert!(schedule.validate(inst).is_ok());
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_exact::brute_force;
    use bisched_graph::{gilbert_bipartite, Graph};
    use bisched_model::{JobSizes, SpeedProfile};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn tiny_instances_are_solved_exactly() {
        // Σp = 4 -> brute force path.
        let g = Graph::from_edges(3, &[(0, 1)]);
        let inst = Instance::uniform(vec![2, 1, 1], vec![2, 1, 1], g).unwrap();
        let r = alg1_sqrt_approx(&inst).unwrap();
        assert_eq!(r.winner, "brute");
        let opt = brute_force(&inst).unwrap();
        assert_eq!(r.makespan, opt.makespan);
    }

    #[test]
    fn single_machine_cases() {
        let inst = Instance::uniform(vec![3], vec![6, 3], Graph::empty(2)).unwrap();
        let r = alg1_sqrt_approx(&inst).unwrap();
        assert_eq!(r.makespan, Rat::integer(3));
        let bad = Instance::uniform(vec![3], vec![6, 3], Graph::from_edges(2, &[(0, 1)])).unwrap();
        assert_eq!(alg1_sqrt_approx(&bad).unwrap_err(), Alg1Error::Infeasible);
    }

    #[test]
    fn rejects_non_bipartite_and_unrelated() {
        let odd = Instance::identical(3, vec![2; 5], Graph::cycle(5)).unwrap();
        assert_eq!(alg1_sqrt_approx(&odd).unwrap_err(), Alg1Error::NotBipartite);
        let r = Instance::unrelated(vec![vec![1], vec![1]], Graph::empty(1)).unwrap();
        assert_eq!(
            alg1_sqrt_approx(&r).unwrap_err(),
            Alg1Error::WrongEnvironment
        );
    }

    #[test]
    fn theorem9_guarantee_versus_exact_randomized() {
        let mut rng = StdRng::seed_from_u64(71);
        for trial in 0..25 {
            let n = rng.gen_range(3..=9);
            let m = rng.gen_range(2..=4);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.4, &mut rng);
            let p = JobSizes::Uniform { lo: 1, hi: 12 }.sample(n, &mut rng);
            let profile = match trial % 3 {
                0 => SpeedProfile::Equal,
                1 => SpeedProfile::Geometric { ratio: 2 },
                _ => SpeedProfile::OneFast { factor: 6 },
            };
            let inst = Instance::uniform(profile.speeds(m), p, g).unwrap();
            let r = alg1_sqrt_approx(&inst).unwrap();
            assert!(r.schedule.validate(&inst).is_ok());
            let opt = brute_force(&inst).unwrap();
            let ratio = r.makespan.ratio_to(&opt.makespan);
            let bound = (inst.total_processing() as f64).sqrt();
            assert!(
                ratio <= bound + 1e-9,
                "ratio {ratio} > √Σp = {bound} on {} (trial {trial})",
                inst.describe()
            );
        }
    }

    #[test]
    fn cstar_is_a_true_lower_bound() {
        let mut rng = StdRng::seed_from_u64(73);
        for _ in 0..15 {
            let n = rng.gen_range(3..=8);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.4, &mut rng);
            let p = JobSizes::Uniform { lo: 1, hi: 9 }.sample(n, &mut rng);
            let inst =
                Instance::uniform(SpeedProfile::Geometric { ratio: 2 }.speeds(3), p, g).unwrap();
            let r = alg1_sqrt_approx(&inst).unwrap();
            if let Some(lb) = r.cstar_lower {
                let opt = brute_force(&inst).unwrap();
                assert!(lb <= opt.makespan, "C** {lb} > OPT {}", opt.makespan);
            }
        }
    }

    #[test]
    fn unit_jobs_many_slow_machines() {
        // The shape Theorem 8 exploits: one fast machine + slow tail.
        let g = Graph::complete_bipartite(4, 4);
        let inst = Instance::uniform(vec![10, 1, 1, 1, 1], vec![1; 8], g).unwrap();
        let r = alg1_sqrt_approx(&inst).unwrap();
        assert!(r.schedule.validate(&inst).is_ok());
        let opt = brute_force(&inst).unwrap();
        let bound = (8f64).sqrt();
        assert!(r.makespan.ratio_to(&opt.makespan) <= bound + 1e-9);
    }

    #[test]
    fn s2_wins_when_spreading_helps() {
        // Many independent equal jobs on equal speeds: spreading beats
        // squeezing onto two machines. Note Algorithm 1 still reserves
        // M_2..M_k for J ∖ I (empty here), so with I = everything the jobs
        // land on M_1 ∪ M_4..M_6 — 4 of the 6 machines: makespan 12 versus
        // S1's 24 (and an absolute optimum of 8).
        let inst = Instance::identical(6, vec![2; 24], Graph::empty(24)).unwrap();
        let r = alg1_sqrt_approx(&inst).unwrap();
        assert!(r.schedule.validate(&inst).is_ok());
        assert_eq!(r.makespan, Rat::integer(12), "got {}", r.makespan);
        assert_eq!(r.winner, "S2");
        // Within the Theorem 9 budget: 12 / 8 = 1.5 <= sqrt(48).
        assert!(r.makespan.ratio_to(&Rat::integer(8)) <= (48f64).sqrt());
    }

    #[test]
    fn empty_jobs() {
        let inst = Instance::uniform(vec![2, 1], vec![], Graph::empty(0)).unwrap();
        let r = alg1_sqrt_approx(&inst).unwrap();
        assert_eq!(r.makespan, Rat::ZERO);
    }
}
