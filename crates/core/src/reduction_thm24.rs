//! Theorem 24: the gap reduction from 1-PrExt to
//! `Rm | G = bipartite | C_max` (`m ≥ 3`) ruling out any
//! `O(n^b · p_max^{1-ε})`-approximation unless P = NP.
//!
//! Unlike Theorem 8, no gadgets are needed — the unrelated times do all the
//! forcing. With stretch `d`:
//!
//! * pinned job `v_c` (`c ∈ {0,1,2}`): time `1` on machine `c`, `d` on the
//!   other two fast machines;
//! * every job: time `1` on `M_1..M_3`, `d` on every machine beyond;
//!
//! so **YES** ⇒ the color-extension schedule costs ≤ `n`, while **NO** ⇒
//! any schedule cheaper than `d` would place every job on `M_1..M_3` with
//! the pins on their own machines — i.e. exhibit a proper extension — so
//! `C*_max ≥ d`. The instance is small (`n` jobs), which lets experiment
//! E10 verify the gap *exactly* with the branch-and-bound oracle.

use bisched_exact::is_proper_coloring;
use bisched_graph::{is_bipartite, Graph, Vertex};
use bisched_model::{Instance, Rat, Schedule};

/// The reduction output.
#[derive(Clone, Debug)]
pub struct Thm24Reduction {
    /// The produced `Rm | G = bipartite | C_max` instance.
    pub instance: Instance,
    /// The stretch parameter `d`.
    pub d: u64,
    /// The three precolored vertices.
    pub pins: [Vertex; 3],
}

impl Thm24Reduction {
    /// YES-side bound: a color-derived schedule costs at most `n`.
    pub fn yes_bound(&self) -> Rat {
        Rat::integer(self.instance.num_jobs() as u64)
    }

    /// NO-side bound: every schedule costs at least `d`.
    pub fn no_bound(&self) -> Rat {
        Rat::integer(self.d)
    }

    /// The witness schedule from a proper 3-coloring extension
    /// (color `c` → machine `M_{c+1}`).
    pub fn schedule_from_coloring(&self, coloring: &[u8]) -> Schedule {
        assert_eq!(coloring.len(), self.instance.num_jobs());
        let schedule = Schedule::new(coloring.iter().map(|&c| c as u32).collect());
        debug_assert!(schedule.validate(&self.instance).is_ok());
        schedule
    }

    /// Decodes machine labels back into a coloring (`None` if a job sits
    /// beyond `M_3`).
    pub fn decode_coloring(&self, schedule: &Schedule) -> Option<Vec<u8>> {
        (0..self.instance.num_jobs())
            .map(|v| {
                let m = schedule.machine_of(v as u32);
                (m < 3).then_some(m as u8)
            })
            .collect()
    }

    /// Whether the schedule decodes to a proper pinned extension of
    /// `source`.
    pub fn decodes_to_yes(&self, schedule: &Schedule, source: &Graph) -> bool {
        match self.decode_coloring(schedule) {
            None => false,
            Some(colors) => {
                is_proper_coloring(source, &colors)
                    && self
                        .pins
                        .iter()
                        .enumerate()
                        .all(|(c, &v)| colors[v as usize] == c as u8)
            }
        }
    }
}

/// Builds the Theorem 24 reduction for `m ≥ 3` machines and stretch
/// `d ≥ 1`.
pub fn reduce_1prext_to_rm(source: &Graph, pins: [Vertex; 3], d: u64, m: usize) -> Thm24Reduction {
    assert!(m >= 3, "Theorem 24 needs m ≥ 3 machines");
    assert!(d >= 1);
    assert!(
        is_bipartite(source),
        "1-PrExt source must be bipartite here"
    );
    assert!(
        pins[0] != pins[1] && pins[1] != pins[2] && pins[0] != pins[2],
        "precolored vertices must be distinct"
    );
    let n = source.num_vertices();
    let mut times = vec![vec![1u64; n]; m];
    // Fast machines M_1..M_3: pins cost d off their own machine.
    for (c, &v) in pins.iter().enumerate() {
        for (i, row) in times.iter_mut().take(3).enumerate() {
            row[v as usize] = if i == c { 1 } else { d };
        }
    }
    // Machines beyond M_3 are useless: everything costs d there.
    for row in times.iter_mut().skip(3) {
        for t in row.iter_mut() {
            *t = d;
        }
    }
    let instance = Instance::unrelated(times, source.clone()).expect("valid reduction");
    Thm24Reduction { instance, d, pins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_exact::{
        branch_and_bound, claw_no_instance, path_yes_instance, precoloring_extension, standard_pins,
    };

    #[test]
    fn yes_gap_verified_exactly() {
        let (g, pins) = path_yes_instance(2);
        let coloring = precoloring_extension(&g, &standard_pins(&pins), 3).expect("YES");
        let red = reduce_1prext_to_rm(&g, pins, 50, 3);
        // Witness is cheap.
        let s = red.schedule_from_coloring(&coloring);
        assert!(s.makespan(&red.instance) <= red.yes_bound());
        // And the exact optimum is at most n.
        let opt = branch_and_bound(&red.instance, 10_000_000);
        assert!(opt.complete);
        assert!(opt.optimum.unwrap().makespan <= red.yes_bound());
    }

    #[test]
    fn no_gap_verified_exactly() {
        let (g, pins) = claw_no_instance(2);
        assert!(precoloring_extension(&g, &standard_pins(&pins), 3).is_none());
        let red = reduce_1prext_to_rm(&g, pins, 50, 3);
        let opt = branch_and_bound(&red.instance, 10_000_000);
        assert!(opt.complete);
        let mk = opt.optimum.unwrap().makespan;
        assert!(
            mk >= red.no_bound(),
            "NO instance scheduled below d: {mk} < {}",
            red.no_bound()
        );
    }

    #[test]
    fn extra_machines_do_not_help() {
        let (g, pins) = claw_no_instance(1);
        let red3 = reduce_1prext_to_rm(&g, pins, 30, 3);
        let red5 = reduce_1prext_to_rm(&g, pins, 30, 5);
        let o3 = branch_and_bound(&red3.instance, 10_000_000)
            .optimum
            .unwrap()
            .makespan;
        let o5 = branch_and_bound(&red5.instance, 10_000_000)
            .optimum
            .unwrap()
            .makespan;
        // More d-cost machines can spread d-jobs but never beat the bound.
        assert!(o5 >= red5.no_bound().min(o3));
    }

    #[test]
    fn decode_roundtrip_on_yes() {
        let (g, pins) = path_yes_instance(0);
        let coloring = precoloring_extension(&g, &standard_pins(&pins), 3).unwrap();
        let red = reduce_1prext_to_rm(&g, pins, 10, 4);
        let s = red.schedule_from_coloring(&coloring);
        assert!(red.decodes_to_yes(&s, &g));
    }

    #[test]
    fn cheap_optimum_decodes_to_coloring() {
        // The forcing direction: an exact optimum under d must decode.
        let (g, pins) = path_yes_instance(3);
        let red = reduce_1prext_to_rm(&g, pins, 40, 3);
        let opt = branch_and_bound(&red.instance, 10_000_000).optimum.unwrap();
        assert!(opt.makespan < red.no_bound());
        assert!(red.decodes_to_yes(&opt.schedule, &g));
    }

    #[test]
    fn gap_scales_with_d() {
        let (g, pins) = claw_no_instance(0);
        for d in [10u64, 100, 1000] {
            let red = reduce_1prext_to_rm(&g, pins, d, 3);
            let gap = red.no_bound().ratio_to(&red.yes_bound());
            assert!((gap - d as f64 / 4.0).abs() < 1e-9);
        }
    }
}
