//! Theorem 4: the `O(n³)` algorithm for `Q2 | G = bipartite, p_j = 1 | C_max`
//! via the `R2` FPTAS.
//!
//! The paper's (appendix) construction: for every split `(n_1, n_2)` with
//! `n_1 + n_2 = n`, build the prepared `R2` instance with
//! `p_{i,j} = n_1 n_2 / n_i` (i.e. every job costs `n_2` on `M_1` and `n_1`
//! on `M_2`) and run the FPTAS with `ε ≈ 1/(n+1)`. If a schedule giving
//! exactly `n_i` jobs to `M_i` exists, its makespan is `n_1 n_2`, and any
//! misdistributed schedule costs at least `n_1 n_2 (1 + 1/n_i)` — beyond the
//! FPTAS guarantee — so the returned distribution *is* the feasibility
//! answer for the split. The best feasible split under the true speeds wins.
//!
//! `bisched-exact::q2_bipartite_exact` reaches the same optimum through a
//! direct subset-sum; experiment E4 and the tests cross-check the routes.

use bisched_exact::Optimum;
use bisched_exact::OracleError;
use bisched_graph::is_bipartite;
use bisched_model::{Instance, MachineEnvironment, Rat, Schedule};

use crate::r2_fptas::r2_fptas;

/// Theorem 4's FPTAS-route exact algorithm for
/// `Q2 | G = bipartite, p_j = 1 | C_max`.
pub fn thm4_fptas_route(inst: &Instance) -> Result<Optimum, OracleError> {
    if inst.num_machines() != 2 {
        return Err(OracleError::NotTwoMachines {
            got: inst.num_machines(),
        });
    }
    let (s1, s2) = match inst.env() {
        MachineEnvironment::Identical { .. } => (1u64, 1u64),
        MachineEnvironment::Uniform { speeds } => (speeds[0], speeds[1]),
        MachineEnvironment::Unrelated { .. } => {
            return Err(OracleError::WrongEnvironment { got: "R" })
        }
    };
    assert!(inst.is_unit(), "Theorem 4 is for unit jobs");
    let g = inst.graph();
    if !is_bipartite(g) {
        return Err(OracleError::NotBipartite);
    }
    let n = inst.num_jobs();
    if n == 0 {
        return Ok(Optimum {
            schedule: Schedule::new(Vec::new()),
            makespan: Rat::ZERO,
        });
    }

    let mut best: Option<Optimum> = None;
    let consider = |makespan: Rat, schedule: Schedule, best: &mut Option<Optimum>| {
        if best.as_ref().is_none_or(|b| makespan < b.makespan) {
            *best = Some(Optimum { schedule, makespan });
        }
    };

    // Degenerate splits: everything on one machine (feasible iff no edges).
    if g.num_edges() == 0 {
        consider(Rat::new(n as u64, s1), Schedule::new(vec![0; n]), &mut best);
        consider(Rat::new(n as u64, s2), Schedule::new(vec![1; n]), &mut best);
    }

    // Proper splits, each checked through the FPTAS on the prepared
    // instance (p_{1,j} = n_2, p_{2,j} = n_1 for every job).
    let eps = 1.0 / (n as f64 + 1.0);
    for n1 in 1..n {
        let n2 = n - n1;
        let times = vec![vec![n2 as u64; n], vec![n1 as u64; n]];
        let prepared = Instance::unrelated(times, g.clone()).expect("valid prepared instance");
        let s = r2_fptas(&prepared, eps)?;
        let on_m1 = s.assignment().iter().filter(|&&i| i == 0).count();
        if on_m1 == n1 {
            // Split feasible; evaluate under the true speeds.
            let makespan = Rat::new(n1 as u64, s1).max(Rat::new(n2 as u64, s2));
            consider(makespan, s, &mut best);
        }
    }
    // At least one proper split is feasible whenever n >= 2 and G has an
    // edge (the 2-coloring itself); with n = 1 the degenerate splits fired.
    Ok(best.expect("a bipartite instance on two machines always has a schedule"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_exact::q2_bipartite_exact;
    use bisched_graph::{gilbert_bipartite, Graph};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_direct_dp_on_fixed_cases() {
        let cases = vec![
            (Graph::empty(6), vec![2u64, 1]),
            (Graph::cycle(8), vec![3, 1]),
            (Graph::complete_bipartite(3, 5), vec![2, 2]),
            (Graph::path(7), vec![5, 1]),
        ];
        for (g, speeds) in cases {
            let n = g.num_vertices();
            let inst = Instance::uniform(speeds, vec![1; n], g).unwrap();
            let via_fptas = thm4_fptas_route(&inst).unwrap();
            let via_dp = q2_bipartite_exact(&inst).unwrap();
            assert_eq!(
                via_fptas.makespan,
                via_dp.makespan,
                "routes disagree on {}",
                inst.describe()
            );
            assert!(via_fptas.schedule.validate(&inst).is_ok());
        }
    }

    #[test]
    fn matches_direct_dp_randomized() {
        let mut rng = StdRng::seed_from_u64(89);
        for _ in 0..25 {
            let n = rng.gen_range(1..=12);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.4, &mut rng);
            let s1 = rng.gen_range(1..=5);
            let s2 = rng.gen_range(1..=s1);
            let inst = Instance::uniform(vec![s1, s2], vec![1; n], g).unwrap();
            let via_fptas = thm4_fptas_route(&inst).unwrap();
            let via_dp = q2_bipartite_exact(&inst).unwrap();
            assert_eq!(via_fptas.makespan, via_dp.makespan, "n={n} s=({s1},{s2})");
        }
    }

    #[test]
    fn single_job() {
        let inst = Instance::uniform(vec![4, 1], vec![1], Graph::empty(1)).unwrap();
        let opt = thm4_fptas_route(&inst).unwrap();
        assert_eq!(opt.makespan, Rat::new(1, 4));
    }

    #[test]
    fn forced_even_split_on_complete_bipartite() {
        // K_{4,4}: each machine takes exactly one side.
        let inst =
            Instance::uniform(vec![2, 1], vec![1; 8], Graph::complete_bipartite(4, 4)).unwrap();
        let opt = thm4_fptas_route(&inst).unwrap();
        // max(4/2, 4/1) = 4 either way.
        assert_eq!(opt.makespan, Rat::integer(4));
    }

    #[test]
    #[should_panic(expected = "unit jobs")]
    fn rejects_weighted_jobs() {
        let inst = Instance::uniform(vec![1, 1], vec![2, 1], Graph::empty(2)).unwrap();
        let _ = thm4_fptas_route(&inst);
    }
}
