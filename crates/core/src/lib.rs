//! # bisched-core
//!
//! The algorithms of *"Scheduling on uniform and unrelated machines with
//! bipartite incompatibility graphs"* (Pikies & Furmańczyk, IPPS 2022):
//!
//! * [`alg1_sqrt`] — Algorithm 1: the `√(Σp_j)`-approximation for
//!   `Q | G = bipartite | C_max` (Theorem 9);
//! * [`alg2_random`] — Algorithm 2: the a.a.s. 2-approximation for
//!   `Q | G = G_{n,n,p(n)}, p_j = 1 | C_max` (Theorem 19);
//! * [`r2_reduction`] — Algorithm 3: component reduction of
//!   `R2 | G = bipartite | C_max` to `R2 || C_max`;
//! * [`r2_approx`] — Algorithm 4: `O(n)`-time 2-approximation (Theorem 21);
//! * [`r2_fptas`] — Algorithm 5: FPTAS for `R2 | G = bipartite | C_max`
//!   (Theorem 22);
//! * [`thm4_q2unit`] — Theorem 4: `O(n³)` exact
//!   `Q2 | G = bipartite, p_j = 1 | C_max` via the FPTAS route;
//! * [`reduction_thm8`] / [`reduction_thm24`] — the executable gap
//!   reductions behind the inapproximability results;
//! * [`solver`] — the configurable [`Solver`] engine dispatching over all
//!   of the above (typed [`Guarantee`]s, method policies, solve reports,
//!   batch solving).

#![warn(missing_docs)]
// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
pub mod alg1_sqrt;
pub mod alg2_random;
pub mod r2_approx;
pub mod r2_fptas;
pub mod r2_reduction;
pub mod reduction_thm24;
pub mod reduction_thm8;
pub mod solver;
pub mod thm4_q2unit;

pub use alg1_sqrt::{alg1_sqrt_approx, Alg1Error, Alg1Result};
pub use alg2_random::{alg2_balanced, alg2_random_graph, Alg2Result};
pub use r2_approx::r2_two_approx;
pub use r2_fptas::{r2_fptas, r2_fptas_with, FptasControls, R2FptasError, R2FptasReport};
pub use r2_reduction::{reduce_r2, Orientation, ReducedR2};
pub use reduction_thm24::{reduce_1prext_to_rm, Thm24Reduction};
pub use reduction_thm8::{reduce_1prext_to_qm, Thm8Reduction};
pub use solver::{
    EngineOutcome, EngineRun, EngineStats, Guarantee, Method, MethodPolicy, SolveError,
    SolveReport, Solver, SolverConfig, DEFAULT_EPS,
};
pub use thm4_q2unit::thm4_fptas_route;
