//! Unified solving façade: pick the paper's right tool for an instance.
//!
//! Downstream users mostly want "give me a good schedule and tell me what
//! you can promise about it". [`solve`] dispatches:
//!
//! | instance | method | guarantee |
//! |---|---|---|
//! | `Q2`/`P2`, small `Σp_j` | exact subset-sum DP | optimal |
//! | `P`, `m ≥ 3` | best of BJW [3] and Algorithm 1 | `2 · C*` (best possible, [3]) |
//! | `Q`, `m ≥ 3` (or huge `Σp_j`) | Algorithm 1 | `√Σp_j · C*` |
//! | `R2` | Algorithm 5 (FPTAS) | `(1+ε) · C*` |
//! | `R`, `m ≥ 3` | graph-aware greedy | none (Theorem 24 says none exists) |

use bisched_baselines::bjw_two_approx;
use bisched_exact::{greedy_incumbent, q2_bipartite_exact};
use bisched_model::{Instance, MachineEnvironment, Rat, Schedule};

use crate::alg1_sqrt::{alg1_sqrt_approx, Alg1Error};
use crate::r2_fptas::r2_fptas;

/// A solved instance with provenance.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The schedule.
    pub schedule: Schedule,
    /// Its makespan.
    pub makespan: Rat,
    /// Which engine produced it.
    pub method: Method,
    /// Human-readable guarantee that came with the method.
    pub guarantee: &'static str,
}

/// The solving engine used by [`solve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Exact `Q2`/`P2` component DP.
    ExactQ2,
    /// Algorithm 1 (`√Σp_j`-approximation, Theorem 9).
    Alg1,
    /// Bodlaender–Jansen–Woeginger 2-approximation (`P`, `m ≥ 3`; [3]
    /// showed 2 is best possible on identical machines).
    Bjw,
    /// Algorithm 5 (`R2` FPTAS, Theorem 22).
    R2Fptas,
    /// Graph-aware greedy (no guarantee; `Rm`, `m ≥ 3`).
    GreedyR,
}

/// Errors of the façade.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The incompatibility graph is not bipartite.
    NotBipartite,
    /// No feasible schedule exists (one machine, at least one edge).
    Infeasible,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NotBipartite => write!(f, "incompatibility graph is not bipartite"),
            SolveError::Infeasible => write!(f, "no feasible schedule exists"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Pseudo-polynomial budget under which the exact `Q2` DP is preferred.
const EXACT_Q2_BUDGET: u64 = 1 << 22;

/// Accuracy used for `R2` instances.
const DEFAULT_EPS: f64 = 0.125;

/// Solves `inst` with the best-suited method of the paper.
pub fn solve(inst: &Instance) -> Result<Solution, SolveError> {
    if !bisched_graph::is_bipartite(inst.graph()) {
        return Err(SolveError::NotBipartite);
    }
    match inst.env() {
        MachineEnvironment::Unrelated { .. } => {
            if inst.num_machines() == 2 {
                let schedule = r2_fptas(inst, DEFAULT_EPS).map_err(|_| SolveError::NotBipartite)?;
                let makespan = schedule.makespan(inst);
                Ok(Solution {
                    schedule,
                    makespan,
                    method: Method::R2Fptas,
                    guarantee: "(1+1/8) * OPT (Theorem 22 FPTAS)",
                })
            } else {
                let opt = greedy_incumbent(inst).ok_or(SolveError::Infeasible)?;
                Ok(Solution {
                    schedule: opt.schedule,
                    makespan: opt.makespan,
                    method: Method::GreedyR,
                    guarantee: "heuristic only (Theorem 24: no ratio possible)",
                })
            }
        }
        _ => {
            if inst.num_machines() == 2 && inst.total_processing() <= EXACT_Q2_BUDGET {
                let opt = q2_bipartite_exact(inst).map_err(|_| SolveError::NotBipartite)?;
                return Ok(Solution {
                    schedule: opt.schedule,
                    makespan: opt.makespan,
                    method: Method::ExactQ2,
                    guarantee: "optimal (component subset-sum DP)",
                });
            }
            let r = alg1_sqrt_approx(inst).map_err(|e| match e {
                Alg1Error::NotBipartite => SolveError::NotBipartite,
                Alg1Error::Infeasible => SolveError::Infeasible,
                Alg1Error::WrongEnvironment => unreachable!("environment matched above"),
            })?;
            // On identical machines with m ≥ 3 the BJW 2-approximation [3]
            // carries a strictly stronger guarantee than √Σp_j; return the
            // better schedule under the better label.
            if matches!(inst.env(), MachineEnvironment::Identical { .. })
                && inst.num_machines() >= 3
            {
                if let Ok(bjw) = bjw_two_approx(inst) {
                    let bjw_makespan = bjw.makespan(inst);
                    let (schedule, makespan) = if bjw_makespan <= r.makespan {
                        (bjw, bjw_makespan)
                    } else {
                        (r.schedule, r.makespan)
                    };
                    return Ok(Solution {
                        schedule,
                        makespan,
                        method: Method::Bjw,
                        guarantee: "2 * OPT (BJW [3]; best possible for P, m >= 3)",
                    });
                }
            }
            Ok(Solution {
                schedule: r.schedule,
                makespan: r.makespan,
                method: Method::Alg1,
                guarantee: "sqrt(sum p_j) * OPT (Theorem 9)",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_graph::Graph;

    #[test]
    fn q2_dispatches_to_exact() {
        let inst =
            Instance::uniform(vec![2, 1], vec![3, 3, 2], Graph::path(3)).unwrap();
        let s = solve(&inst).unwrap();
        assert_eq!(s.method, Method::ExactQ2);
        assert!(s.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn qm_dispatches_to_alg1() {
        let inst = Instance::uniform(vec![3, 2, 1], vec![2; 9], Graph::cycle(8).disjoint_union(&Graph::empty(1)).0)
            .unwrap();
        let s = solve(&inst).unwrap();
        assert_eq!(s.method, Method::Alg1);
        assert!(s.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn r2_dispatches_to_fptas() {
        let inst = Instance::unrelated(
            vec![vec![3, 5, 2], vec![4, 2, 6]],
            Graph::path(3),
        )
        .unwrap();
        let s = solve(&inst).unwrap();
        assert_eq!(s.method, Method::R2Fptas);
        assert!(s.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn r3_dispatches_to_greedy() {
        let inst = Instance::unrelated(
            vec![vec![1, 2], vec![2, 1], vec![3, 3]],
            Graph::from_edges(2, &[(0, 1)]),
        )
        .unwrap();
        let s = solve(&inst).unwrap();
        assert_eq!(s.method, Method::GreedyR);
        assert!(s.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn p3_dispatches_to_bjw_best_of() {
        let inst =
            Instance::identical(3, vec![4, 3, 3, 2, 2], Graph::complete_bipartite(2, 3)).unwrap();
        let s = solve(&inst).unwrap();
        assert_eq!(s.method, Method::Bjw);
        assert!(s.schedule.validate(&inst).is_ok());
        // The guarantee promised is 2x; verify against brute force here.
        let opt = bisched_exact::brute_force(&inst).unwrap();
        assert!(s.makespan.ratio_to(&opt.makespan) <= 2.0 + 1e-9);
    }

    #[test]
    fn errors_bubble_up() {
        let odd = Instance::identical(3, vec![1; 5], Graph::cycle(5)).unwrap();
        assert_eq!(solve(&odd).unwrap_err(), SolveError::NotBipartite);
        let infeasible =
            Instance::identical(1, vec![1, 1], Graph::from_edges(2, &[(0, 1)])).unwrap();
        assert_eq!(solve(&infeasible).unwrap_err(), SolveError::Infeasible);
    }
}
