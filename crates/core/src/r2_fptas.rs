//! Algorithm 5: FPTAS for `R2 | G = bipartite | C_max` (Theorem 22).
//!
//! Pipeline: run Algorithm 4 to get a 2-approximate horizon `T`; rerun the
//! Algorithm 3 reduction; then encode the unavoidable base loads as two
//! *guard jobs* pinned to their machines by an unreasonable cost (`3T`, as
//! the paper's prose suggests) on the wrong machine; finally hand the
//! difference jobs + guards to the `Rm || C_max` FPTAS and decode the
//! orientation of every crossing component from where its difference job
//! landed.
//!
//! Any schedule of the prepared jobs maps to an original schedule of the
//! same makespan and vice versa, so the `(1+ε)` guarantee transfers.

use crate::r2_approx::r2_two_approx;
use crate::r2_reduction::reduce_r2;
use bisched_exact::OracleError;
use bisched_fptas::{rm_cmax_fptas_with, CapRelief, FptasError, FptasParams};
use bisched_model::{Instance, Schedule};

/// DP-core knobs threaded from [`SolverConfig`](crate::SolverConfig) into
/// the `Rm || C_max` sweep behind Algorithm 5.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FptasControls {
    /// Bound on any DP layer's live width (`None` = unbounded); see
    /// [`bisched_fptas::FptasParams::state_cap`].
    pub state_cap: Option<usize>,
    /// When the cap is hit: `true` coarsens `ε` (doubling, capped at the
    /// Algorithm 5 regime ceiling `ε = 1` so the guard-pinning argument
    /// and Theorem 22 stay valid) and reports the effective `ε`; `false`
    /// fails with a typed [`R2FptasError::StateCap`].
    pub coarsen: bool,
    /// Expand DP layers in parallel chunks (deterministic merge,
    /// result-identical; sequential under the vendored rayon).
    pub parallel: bool,
}

/// A successful Algorithm 5 run with the DP-core observability attached.
#[derive(Clone, Debug)]
pub struct R2FptasReport {
    /// The `(1+ε_effective)`-approximate schedule.
    pub schedule: Schedule,
    /// The `ε` the caller asked for.
    pub eps_requested: f64,
    /// The `ε` the guarantee actually carries (larger than requested only
    /// when a state cap forced coarsening).
    pub eps_effective: f64,
    /// Peak live width of the underlying DP.
    pub peak_states: usize,
    /// Candidate states the DP generated.
    pub expanded: u64,
    /// Candidates the incumbent bound / dominance filter discarded.
    pub pruned: u64,
}

/// Why Algorithm 5 produced no schedule.
#[derive(Clone, Debug, PartialEq)]
pub enum R2FptasError {
    /// The Algorithm 3/4 preprocessing failed (wrong environment, odd
    /// cycle, …).
    Oracle(OracleError),
    /// The DP outgrew [`FptasControls::state_cap`] and coarsening was
    /// disabled or exhausted.
    StateCap(FptasError),
}

impl std::fmt::Display for R2FptasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            R2FptasError::Oracle(e) => write!(f, "{e}"),
            R2FptasError::StateCap(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for R2FptasError {}

impl From<OracleError> for R2FptasError {
    fn from(e: OracleError) -> Self {
        R2FptasError::Oracle(e)
    }
}

/// Algorithm 5: `(1+ε)`-approximate schedule for
/// `R2 | G = bipartite | C_max`. Requires `ε ∈ (0, 1]` (the paper's FPTAS
/// regime; Algorithm 1 calls it with `ε = 1`).
pub fn r2_fptas(inst: &Instance, eps: f64) -> Result<Schedule, OracleError> {
    match r2_fptas_with(inst, eps, &FptasControls::default()) {
        Ok(report) => Ok(report.schedule),
        Err(R2FptasError::Oracle(e)) => Err(e),
        Err(R2FptasError::StateCap(_)) => {
            unreachable!("no state cap was configured")
        }
    }
}

/// Algorithm 5 with the DP-core knobs exposed: optional state cap (with
/// graceful `ε`-coarsening), parallel expansion, and the expanded /
/// pruned / peak-width counters in the report.
pub fn r2_fptas_with(
    inst: &Instance,
    eps: f64,
    controls: &FptasControls,
) -> Result<R2FptasReport, R2FptasError> {
    assert!(
        eps > 0.0 && eps <= 1.0,
        "Algorithm 5 requires ε in (0, 1], got {eps}"
    );
    let red = reduce_r2(inst)?;
    let c = red.num_components();
    if c == 0 {
        return Ok(R2FptasReport {
            schedule: Schedule::new(Vec::new()),
            eps_requested: eps,
            eps_effective: eps,
            peak_states: 0,
            expanded: 0,
            pruned: 0,
        });
    }

    // Step 1: 2-approximate horizon T from Algorithm 4.
    let approx = r2_two_approx(inst)?;
    let t_horizon = approx.makespan(inst).ceil().max(1);

    // Steps 3-5: guard jobs carrying the base loads, pinned by cost 3T on
    // the wrong machine. A zero-cost guard is legal here (the FPTAS treats
    // times as plain numbers).
    let penalty = 3 * t_horizon;
    let mut times = red.times.clone();
    times[0].push(red.base1());
    times[1].push(penalty);
    times[0].push(penalty);
    times[1].push(red.base2());

    // Step 6: FPTAS on the prepared R2||C_max instance. Coarsening stops
    // at ε = 1: past that the misplaced-guard cost 3T would no longer
    // dominate the (1+ε)·OPT ≤ 2T of a correct placement.
    let mut params = FptasParams::new(eps);
    params.state_cap = controls.state_cap;
    params.parallel = controls.parallel;
    params.on_cap = if controls.coarsen {
        CapRelief::Coarsen { max_eps: 1.0 }
    } else {
        CapRelief::Fail
    };
    let result = rm_cmax_fptas_with(&times, &params).map_err(R2FptasError::StateCap)?;
    let assignment = result.schedule.assignment();
    // Guards must sit on their own machines: misplacing one costs 3T alone,
    // while the correct placement achieves ≤ (1+ε)·OPT ≤ 2T.
    debug_assert_eq!(assignment[c], 0, "guard 1 must be on M1");
    debug_assert_eq!(assignment[c + 1], 1, "guard 2 must be on M2");

    // Step 7: decode orientations from the difference jobs.
    Ok(R2FptasReport {
        schedule: red.reconstruct(&assignment[..c]),
        eps_requested: eps,
        eps_effective: result.eps_effective,
        peak_states: result.peak_states,
        expanded: result.expanded,
        pruned: result.pruned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_exact::r2_bipartite_exact;
    use bisched_graph::{gilbert_bipartite, Graph};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_on_single_edge() {
        let inst = Instance::unrelated(
            vec![vec![10, 2], vec![3, 8]],
            Graph::from_edges(2, &[(0, 1)]),
        )
        .unwrap();
        let s = r2_fptas(&inst, 0.1).unwrap();
        assert!(s.validate(&inst).is_ok());
        let opt = r2_bipartite_exact(&inst).unwrap();
        // (1 + 0.1) * OPT, and here OPT is tiny so it's exact.
        assert_eq!(s.makespan(&inst), opt.makespan);
    }

    #[test]
    fn guarantee_holds_over_eps_sweep() {
        let mut rng = StdRng::seed_from_u64(61);
        for &eps in &[1.0, 0.5, 0.25, 0.1, 0.02] {
            for _ in 0..10 {
                let n: usize = rng.gen_range(2..=12);
                let g = gilbert_bipartite(n / 2, n - n / 2, 0.35, &mut rng);
                let times: Vec<Vec<u64>> = (0..2)
                    .map(|_| (0..n).map(|_| rng.gen_range(1..=40)).collect())
                    .collect();
                let inst = Instance::unrelated(times, g).unwrap();
                let s = r2_fptas(&inst, eps).unwrap();
                assert!(s.validate(&inst).is_ok());
                let opt = r2_bipartite_exact(&inst).unwrap();
                let ratio = s.makespan(&inst).ratio_to(&opt.makespan);
                assert!(ratio <= 1.0 + eps + 1e-9, "ε={eps}: ratio {ratio} (n={n})");
            }
        }
    }

    #[test]
    fn tighter_eps_never_worse_much() {
        // Not a theorem, but with the same seed the ε=0.02 schedule should
        // be at least as good as ε=1 on instances with real trade-offs.
        let mut rng = StdRng::seed_from_u64(67);
        let n = 14;
        let g = gilbert_bipartite(7, 7, 0.3, &mut rng);
        let times: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..n).map(|_| rng.gen_range(1..=100)).collect())
            .collect();
        let inst = Instance::unrelated(times, g).unwrap();
        let coarse = r2_fptas(&inst, 1.0).unwrap().makespan(&inst);
        let fine = r2_fptas(&inst, 0.02).unwrap().makespan(&inst);
        assert!(fine <= coarse);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::unrelated(vec![vec![], vec![]], Graph::empty(0)).unwrap();
        let s = r2_fptas(&inst, 0.5).unwrap();
        assert_eq!(s.num_jobs(), 0);
    }

    #[test]
    fn all_isolated_reduces_to_plain_r2() {
        // No edges: Algorithm 5 = FPTAS on the original jobs.
        let inst =
            Instance::unrelated(vec![vec![5, 6, 7], vec![7, 6, 5]], Graph::empty(3)).unwrap();
        let s = r2_fptas(&inst, 0.1).unwrap();
        let opt = r2_bipartite_exact(&inst).unwrap();
        let ratio = s.makespan(&inst).ratio_to(&opt.makespan);
        assert!(ratio <= 1.1 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "requires ε in (0, 1]")]
    fn zero_eps_rejected() {
        let inst = Instance::unrelated(vec![vec![1], vec![1]], Graph::empty(1)).unwrap();
        let _ = r2_fptas(&inst, 0.0);
    }

    /// Job-correlated big-value times: the greedy incumbent stays loose
    /// enough that the DP width genuinely scales with ε (uncorrelated
    /// matrices collapse under pruning regardless of the grid).
    fn wide_instance(n: usize, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<u64> = (0..n).map(|_| rng.gen_range(1_000u64..=100_000)).collect();
        let times: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                base.iter()
                    .map(|&b| b + rng.gen_range(0u64..=2_000))
                    .collect()
            })
            .collect();
        Instance::unrelated(times, Graph::empty(n)).unwrap()
    }

    #[test]
    fn state_cap_coarsens_and_reports_effective_eps() {
        let inst = wide_instance(24, 71);
        let free = r2_fptas_with(&inst, 0.02, &FptasControls::default()).unwrap();
        assert_eq!(free.eps_effective, 0.02);
        assert!(free.expanded > 0);
        // A cap ε = 0.02 cannot meet but the coarsest regime ε can.
        let cap = r2_fptas_with(&inst, 1.0, &FptasControls::default())
            .unwrap()
            .peak_states;
        assert!(cap < free.peak_states, "width must scale with ε here");
        let capped = FptasControls {
            state_cap: Some(cap),
            coarsen: true,
            parallel: false,
        };
        let r = r2_fptas_with(&inst, 0.02, &capped).expect("coarsening relieves the cap");
        assert!(r.eps_effective > 0.02);
        assert!(r.eps_effective <= 1.0, "Algorithm 5's regime is ε ≤ 1");
        assert!(r.schedule.validate(&inst).is_ok());
        // The coarsened run still keeps its (reported) promise.
        let opt = r2_bipartite_exact(&inst).unwrap();
        let ratio = r.schedule.makespan(&inst).ratio_to(&opt.makespan);
        assert!(ratio <= 1.0 + r.eps_effective + 1e-9);
    }

    #[test]
    fn state_cap_without_coarsening_is_a_typed_error() {
        let inst = wide_instance(24, 73);
        let controls = FptasControls {
            state_cap: Some(2),
            coarsen: false,
            parallel: false,
        };
        match r2_fptas_with(&inst, 0.02, &controls) {
            Err(R2FptasError::StateCap(e)) => {
                assert!(e.to_string().contains("state cap 2"), "{e}");
            }
            other => panic!("expected a state-cap error, got {other:?}"),
        }
    }

    #[test]
    fn parallel_controls_match_sequential() {
        let inst = wide_instance(20, 79);
        let seq = r2_fptas_with(&inst, 0.1, &FptasControls::default()).unwrap();
        let par = r2_fptas_with(
            &inst,
            0.1,
            &FptasControls {
                parallel: true,
                ..FptasControls::default()
            },
        )
        .unwrap();
        assert_eq!(
            seq.schedule.assignment(),
            par.schedule.assignment(),
            "parallel expansion must be result-identical"
        );
        assert_eq!(seq.peak_states, par.peak_states);
    }
}
