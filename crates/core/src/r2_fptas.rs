//! Algorithm 5: FPTAS for `R2 | G = bipartite | C_max` (Theorem 22).
//!
//! Pipeline: run Algorithm 4 to get a 2-approximate horizon `T`; rerun the
//! Algorithm 3 reduction; then encode the unavoidable base loads as two
//! *guard jobs* pinned to their machines by an unreasonable cost (`3T`, as
//! the paper's prose suggests) on the wrong machine; finally hand the
//! difference jobs + guards to the `Rm || C_max` FPTAS and decode the
//! orientation of every crossing component from where its difference job
//! landed.
//!
//! Any schedule of the prepared jobs maps to an original schedule of the
//! same makespan and vice versa, so the `(1+ε)` guarantee transfers.

use crate::r2_approx::r2_two_approx;
use crate::r2_reduction::reduce_r2;
use bisched_exact::OracleError;
use bisched_fptas::rm_cmax_fptas;
use bisched_model::{Instance, Schedule};

/// Algorithm 5: `(1+ε)`-approximate schedule for
/// `R2 | G = bipartite | C_max`. Requires `ε ∈ (0, 1]` (the paper's FPTAS
/// regime; Algorithm 1 calls it with `ε = 1`).
pub fn r2_fptas(inst: &Instance, eps: f64) -> Result<Schedule, OracleError> {
    assert!(
        eps > 0.0 && eps <= 1.0,
        "Algorithm 5 requires ε in (0, 1], got {eps}"
    );
    let red = reduce_r2(inst)?;
    let c = red.num_components();
    if c == 0 {
        return Ok(Schedule::new(Vec::new()));
    }

    // Step 1: 2-approximate horizon T from Algorithm 4.
    let approx = r2_two_approx(inst)?;
    let t_horizon = approx.makespan(inst).ceil().max(1);

    // Steps 3-5: guard jobs carrying the base loads, pinned by cost 3T on
    // the wrong machine. A zero-cost guard is legal here (the FPTAS treats
    // times as plain numbers).
    let penalty = 3 * t_horizon;
    let mut times = red.times.clone();
    times[0].push(red.base1());
    times[1].push(penalty);
    times[0].push(penalty);
    times[1].push(red.base2());

    // Step 6: FPTAS on the prepared R2||C_max instance.
    let result = rm_cmax_fptas(&times, eps);
    let assignment = result.schedule.assignment();
    // Guards must sit on their own machines: misplacing one costs 3T alone,
    // while the correct placement achieves ≤ (1+ε)·OPT ≤ 2T.
    debug_assert_eq!(assignment[c], 0, "guard 1 must be on M1");
    debug_assert_eq!(assignment[c + 1], 1, "guard 2 must be on M2");

    // Step 7: decode orientations from the difference jobs.
    Ok(red.reconstruct(&assignment[..c]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_exact::r2_bipartite_exact;
    use bisched_graph::{gilbert_bipartite, Graph};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_on_single_edge() {
        let inst = Instance::unrelated(
            vec![vec![10, 2], vec![3, 8]],
            Graph::from_edges(2, &[(0, 1)]),
        )
        .unwrap();
        let s = r2_fptas(&inst, 0.1).unwrap();
        assert!(s.validate(&inst).is_ok());
        let opt = r2_bipartite_exact(&inst).unwrap();
        // (1 + 0.1) * OPT, and here OPT is tiny so it's exact.
        assert_eq!(s.makespan(&inst), opt.makespan);
    }

    #[test]
    fn guarantee_holds_over_eps_sweep() {
        let mut rng = StdRng::seed_from_u64(61);
        for &eps in &[1.0, 0.5, 0.25, 0.1, 0.02] {
            for _ in 0..10 {
                let n: usize = rng.gen_range(2..=12);
                let g = gilbert_bipartite(n / 2, n - n / 2, 0.35, &mut rng);
                let times: Vec<Vec<u64>> = (0..2)
                    .map(|_| (0..n).map(|_| rng.gen_range(1..=40)).collect())
                    .collect();
                let inst = Instance::unrelated(times, g).unwrap();
                let s = r2_fptas(&inst, eps).unwrap();
                assert!(s.validate(&inst).is_ok());
                let opt = r2_bipartite_exact(&inst).unwrap();
                let ratio = s.makespan(&inst).ratio_to(&opt.makespan);
                assert!(ratio <= 1.0 + eps + 1e-9, "ε={eps}: ratio {ratio} (n={n})");
            }
        }
    }

    #[test]
    fn tighter_eps_never_worse_much() {
        // Not a theorem, but with the same seed the ε=0.02 schedule should
        // be at least as good as ε=1 on instances with real trade-offs.
        let mut rng = StdRng::seed_from_u64(67);
        let n = 14;
        let g = gilbert_bipartite(7, 7, 0.3, &mut rng);
        let times: Vec<Vec<u64>> = (0..2)
            .map(|_| (0..n).map(|_| rng.gen_range(1..=100)).collect())
            .collect();
        let inst = Instance::unrelated(times, g).unwrap();
        let coarse = r2_fptas(&inst, 1.0).unwrap().makespan(&inst);
        let fine = r2_fptas(&inst, 0.02).unwrap().makespan(&inst);
        assert!(fine <= coarse);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::unrelated(vec![vec![], vec![]], Graph::empty(0)).unwrap();
        let s = r2_fptas(&inst, 0.5).unwrap();
        assert_eq!(s.num_jobs(), 0);
    }

    #[test]
    fn all_isolated_reduces_to_plain_r2() {
        // No edges: Algorithm 5 = FPTAS on the original jobs.
        let inst =
            Instance::unrelated(vec![vec![5, 6, 7], vec![7, 6, 5]], Graph::empty(3)).unwrap();
        let s = r2_fptas(&inst, 0.1).unwrap();
        let opt = r2_bipartite_exact(&inst).unwrap();
        let ratio = s.makespan(&inst).ratio_to(&opt.makespan);
        assert!(ratio <= 1.1 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "requires ε in (0, 1]")]
    fn zero_eps_rejected() {
        let inst = Instance::unrelated(vec![vec![1], vec![1]], Graph::empty(1)).unwrap();
        let _ = r2_fptas(&inst, 0.0);
    }
}
