//! Algorithm 2: the a.a.s. 2-approximation for
//! `Q | G = G_{n,n,p(n)}, p_j = 1 | C_max` (Theorem 19).
//!
//! Despite Theorem 8's `Ω(n^{1/2-ε})` worst-case wall, random bipartite
//! graphs are benign: the inequitable coloring's minor class `V'_2` is
//! a.a.s. within a factor `1.6` of the minimum number of jobs that *must*
//! avoid `M_1` (Lemma 14), so parking `V'_2` on a prefix `M_2..M_k` of
//! machines sized to half its cardinality and spreading `V'_1` over the
//! rest lands within twice the optimum.
//!
//! The algorithm itself is deterministic and runs on *any* bipartite
//! unit-job instance; only its guarantee is probabilistic.

use bisched_graph::inequitable_coloring;
use bisched_model::{
    assign_min_completion_uniform, floor_capacities, min_time_to_cover, Instance,
    MachineEnvironment, Rat, Schedule,
};

use crate::alg1_sqrt::Alg1Error;

/// Result of Algorithm 2 with the quantities Theorem 19's proof tracks.
#[derive(Clone, Debug)]
pub struct Alg2Result {
    /// The schedule.
    pub schedule: Schedule,
    /// Its makespan.
    pub makespan: Rat,
    /// The `C**_max` capacity bound of step 2 (`Σ⌊s_i T⌋ ≥ n`).
    pub cstar: Rat,
    /// The chosen split point `k` (1-based, as in the paper).
    pub k: usize,
    /// `|V'_2|` — the minor color class size.
    pub minor_size: usize,
}

/// Algorithm 2 for `Q | G = bipartite, p_j = 1 | C_max`.
pub fn alg2_random_graph(inst: &Instance) -> Result<Alg2Result, Alg1Error> {
    if matches!(inst.env(), MachineEnvironment::Unrelated { .. }) {
        return Err(Alg1Error::WrongEnvironment);
    }
    assert!(
        inst.is_unit(),
        "Algorithm 2 is stated for unit jobs (p_j = 1)"
    );
    let speeds = inst.speeds();
    let m = speeds.len();
    let n = inst.num_jobs();
    let coloring = inequitable_coloring(inst.graph()).map_err(|_| Alg1Error::NotBipartite)?;
    let major = coloring.major();
    let minor = coloring.minor();
    if m == 1 {
        if !minor.is_empty() {
            return Err(Alg1Error::Infeasible);
        }
        let schedule = Schedule::new(vec![0; n]);
        let makespan = schedule.makespan(inst);
        return Ok(Alg2Result {
            schedule,
            makespan,
            cstar: min_time_to_cover(&speeds, n as u64),
            k: 1,
            minor_size: 0,
        });
    }

    // Step 2: capacity bound at demand n.
    let cstar = min_time_to_cover(&speeds, n as u64);
    let caps = floor_capacities(&speeds, &cstar);

    // Step 3: least k with caps(M_2..M_k) ≥ |V'_2| / 2, else k = m.
    let mut k = 2usize;
    let mut cum = caps[1];
    while 2 * cum < minor.len() as u64 && k < m {
        cum += caps[k];
        k += 1;
    }

    // Step 4: V'_2 on M_2..M_k; V'_1 on M_1, M_{k+1}..M_m.
    let group_minor: Vec<u32> = (1..k as u32).collect();
    let mut group_major: Vec<u32> = vec![0];
    group_major.extend(k as u32..m as u32);

    let mut loads = vec![0u64; m];
    let mut assignment = vec![u32::MAX; n];
    let p = inst.processing_all();
    assign_min_completion_uniform(
        &speeds,
        p,
        &minor,
        &group_minor,
        &mut loads,
        &mut assignment,
    );
    assign_min_completion_uniform(
        &speeds,
        p,
        &major,
        &group_major,
        &mut loads,
        &mut assignment,
    );
    let schedule = Schedule::new(assignment);
    debug_assert!(schedule.validate(inst).is_ok());
    let makespan = schedule.makespan(inst);
    Ok(Alg2Result {
        schedule,
        makespan,
        cstar,
        k,
        minor_size: minor.len(),
    })
}

/// The paper's Section 6 improvement, implemented: after the Algorithm 2
/// split, *isolated* jobs (degree 0 — compatible with everything) are
/// pulled out and re-placed greedily across **all** machines, balancing the
/// schedule. In the sub-critical regime `p(n) = o(1/n)` almost all jobs are
/// isolated, which is precisely where the paper says Algorithm 2 "could be
/// improved, by better assigning the isolated jobs and using them to
/// 'balance' the schedule".
///
/// Never worse than Algorithm 2 on isolated-free graphs (identical
/// output); experiment E12's companion row quantifies the win.
pub fn alg2_balanced(inst: &Instance) -> Result<Alg2Result, Alg1Error> {
    let base = alg2_random_graph(inst)?;
    let g = inst.graph();
    let n = inst.num_jobs();
    let isolated: Vec<u32> = (0..n as u32).filter(|&v| g.degree(v) == 0).collect();
    if isolated.is_empty() {
        return Ok(base);
    }
    let speeds = inst.speeds();
    let m = speeds.len();
    // Strip the isolated jobs from the base schedule, then re-add them by
    // min-completion greedy over all machines (they conflict with nothing).
    let mut assignment = base.schedule.assignment().to_vec();
    let mut loads = vec![0u64; m];
    for (j, &i) in assignment.iter().enumerate() {
        if g.degree(j as u32) > 0 {
            loads[i as usize] += inst.processing(j as u32);
        }
    }
    let all_machines: Vec<u32> = (0..m as u32).collect();
    let p = inst.processing_all();
    let order = bisched_model::lpt_order(p, &isolated);
    assign_min_completion_uniform(
        &speeds,
        p,
        &order,
        &all_machines,
        &mut loads,
        &mut assignment,
    );
    let schedule = Schedule::new(assignment);
    debug_assert!(schedule.validate(inst).is_ok());
    let makespan = schedule.makespan(inst);
    Ok(Alg2Result {
        makespan: makespan.min(base.makespan),
        schedule: if makespan <= base.makespan {
            schedule
        } else {
            base.schedule
        },
        cstar: base.cstar,
        k: base.k,
        minor_size: base.minor_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_exact::brute_force;
    use bisched_graph::{gilbert_bipartite, Graph};
    use bisched_model::SpeedProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn feasible_on_random_graphs_all_profiles() {
        let mut rng = StdRng::seed_from_u64(79);
        for profile in [
            SpeedProfile::Equal,
            SpeedProfile::Geometric { ratio: 2 },
            SpeedProfile::OneFast { factor: 20 },
            SpeedProfile::TwoTier {
                fast_count: 2,
                factor: 5,
            },
        ] {
            for &p in &[0.01, 0.1, 0.6] {
                let g = gilbert_bipartite(30, 30, p, &mut rng);
                let inst = Instance::uniform(profile.speeds(5), vec![1; 60], g).unwrap();
                let r = alg2_random_graph(&inst).unwrap();
                assert!(r.schedule.validate(&inst).is_ok());
                assert!(r.makespan >= r.cstar, "makespan below the capacity LB");
            }
        }
    }

    #[test]
    fn empty_graph_spreads_over_everything() {
        // No edges: V'_2 is empty, k stays 2, all jobs on M_1 ∪ M_3..M_m —
        // the paper's own "p(n) = o(1/n)" behavior (M_2 underutilized).
        let inst = Instance::identical(4, vec![1; 12], Graph::empty(12)).unwrap();
        let r = alg2_random_graph(&inst).unwrap();
        assert_eq!(r.minor_size, 0);
        assert!(r.schedule.validate(&inst).is_ok());
        // Machine 1 (0-based index 1) received nothing.
        assert!(r.schedule.jobs_on(1).is_empty());
        // Still at most twice the optimum (4 machines -> OPT 3; we use 3).
        assert!(r.makespan <= Rat::integer(6));
    }

    #[test]
    fn complete_bipartite_two_blocks() {
        let g = Graph::complete_bipartite(6, 6);
        let inst = Instance::uniform(vec![3, 2, 1], vec![1; 12], g).unwrap();
        let r = alg2_random_graph(&inst).unwrap();
        assert!(r.schedule.validate(&inst).is_ok());
        let opt = brute_force(&inst).unwrap();
        // Not guaranteed deterministically, but this instance is benign.
        assert!(r.makespan.ratio_to(&opt.makespan) <= 2.0 + 1e-9);
    }

    #[test]
    fn ratio_to_capacity_bound_reasonable_on_random() {
        // Statistical smoke: over seeds, ratio vs C** should hover <= ~2.5
        // (the real validation is experiment E7 with matching-aware LBs).
        let mut rng = StdRng::seed_from_u64(83);
        let mut worst: f64 = 0.0;
        for _ in 0..10 {
            let g = gilbert_bipartite(40, 40, 2.0 / 40.0, &mut rng);
            let inst = Instance::uniform(
                SpeedProfile::Geometric { ratio: 2 }.speeds(4),
                vec![1; 80],
                g,
            )
            .unwrap();
            let r = alg2_random_graph(&inst).unwrap();
            worst = worst.max(r.makespan.ratio_to(&r.cstar));
        }
        assert!(
            worst <= 3.0,
            "suspiciously bad ratio {worst} vs capacity LB"
        );
    }

    #[test]
    fn one_machine_edge_cases() {
        let inst = Instance::uniform(vec![2], vec![1; 4], Graph::empty(4)).unwrap();
        let r = alg2_random_graph(&inst).unwrap();
        assert_eq!(r.makespan, Rat::integer(2));
        let bad = Instance::uniform(vec![2], vec![1, 1], Graph::from_edges(2, &[(0, 1)])).unwrap();
        assert_eq!(alg2_random_graph(&bad).unwrap_err(), Alg1Error::Infeasible);
    }

    #[test]
    #[should_panic(expected = "unit jobs")]
    fn non_unit_jobs_rejected() {
        let inst = Instance::identical(2, vec![2, 1], Graph::empty(2)).unwrap();
        let _ = alg2_random_graph(&inst);
    }

    #[test]
    fn balanced_variant_never_worse() {
        let mut rng = StdRng::seed_from_u64(87);
        for &p in &[0.0005, 0.01, 0.2] {
            for profile in [SpeedProfile::Equal, SpeedProfile::Geometric { ratio: 2 }] {
                let g = gilbert_bipartite(40, 40, p, &mut rng);
                let inst = Instance::uniform(profile.speeds(5), vec![1; 80], g).unwrap();
                let base = alg2_random_graph(&inst).unwrap();
                let balanced = alg2_balanced(&inst).unwrap();
                assert!(balanced.schedule.validate(&inst).is_ok());
                assert!(
                    balanced.makespan <= base.makespan,
                    "balancing regressed: {} > {}",
                    balanced.makespan,
                    base.makespan
                );
            }
        }
    }

    #[test]
    fn balanced_fixes_subcritical_waste() {
        // All-isolated jobs: base Algorithm 2 parks everything on
        // M_1 ∪ M_3.. (skipping M_2); balancing uses every machine and
        // reaches the capacity optimum.
        let inst = Instance::identical(4, vec![1; 12], Graph::empty(12)).unwrap();
        let base = alg2_random_graph(&inst).unwrap();
        let balanced = alg2_balanced(&inst).unwrap();
        assert_eq!(base.makespan, Rat::integer(4)); // 12 jobs on 3 machines
        assert_eq!(balanced.makespan, Rat::integer(3)); // 12 on 4
        let opt = brute_force(&inst).unwrap();
        assert_eq!(balanced.makespan, opt.makespan);
    }

    #[test]
    fn balanced_identical_when_no_isolated() {
        let g = Graph::complete_bipartite(5, 5);
        let inst = Instance::uniform(vec![2, 1, 1], vec![1; 10], g).unwrap();
        let base = alg2_random_graph(&inst).unwrap();
        let balanced = alg2_balanced(&inst).unwrap();
        assert_eq!(base.makespan, balanced.makespan);
        assert_eq!(base.schedule, balanced.schedule);
    }
}
