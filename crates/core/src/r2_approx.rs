//! Algorithm 4: the `O(n)`-time 2-approximation for
//! `R2 | G = bipartite | C_max` (Theorem 21).
//!
//! After the Algorithm 3 reduction, every schedule pays the base loads
//! `(T_1, T_2) = (ΣP'_k, ΣP''_k)` plus, per crossing component, one of the
//! two difference costs. Greedily sending each difference job to its
//! cheaper machine minimizes the total extra time `T_extra`; the produced
//! makespan is at most `max(T_1, T_2) + T_extra`, while every schedule is
//! at least `(T_1 + T_2 + T_extra)/2` — hence the factor 2.

use crate::r2_reduction::{reduce_r2, ReducedR2};
use bisched_exact::OracleError;
use bisched_model::{Instance, Schedule};

/// Algorithm 4: 2-approximate schedule for `R2 | G = bipartite | C_max`.
pub fn r2_two_approx(inst: &Instance) -> Result<Schedule, OracleError> {
    let red = reduce_r2(inst)?;
    Ok(assign_cheaper(&red))
}

/// The greedy core, reusable once a [`ReducedR2`] is at hand: each
/// difference job to the machine where it is cheaper (ties to `M_1`).
pub fn assign_cheaper(red: &ReducedR2) -> Schedule {
    let reduced_assignment: Vec<u32> = (0..red.num_components())
        .map(|k| u32::from(red.times[0][k] > red.times[1][k]))
        .collect();
    red.reconstruct(&reduced_assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_exact::r2_bipartite_exact;
    use bisched_graph::{gilbert_bipartite, Graph};
    use bisched_model::UnrelatedFamily;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_crossing_component_picks_cheaper_side() {
        let inst = Instance::unrelated(
            vec![vec![10, 2], vec![3, 8]],
            Graph::from_edges(2, &[(0, 1)]),
        )
        .unwrap();
        // Difference job: (8, 5) -> cheaper on M2 -> crossed orientation.
        let s = r2_two_approx(&inst).unwrap();
        assert!(s.validate(&inst).is_ok());
        // Crossed: job 0 -> M2 (3), job 1 -> M1 (2): loads (2, 3).
        assert_eq!(s.loads(&inst), vec![2, 3]);
    }

    #[test]
    fn ratio_at_most_two_randomized() {
        let mut rng = StdRng::seed_from_u64(53);
        let families = [
            UnrelatedFamily::Uncorrelated { lo: 1, hi: 50 },
            UnrelatedFamily::JobCorrelated {
                base: (5, 50),
                spread: 10,
            },
            UnrelatedFamily::MachineCorrelated {
                base: (5, 50),
                spread: 10,
            },
        ];
        for fam in families {
            for _ in 0..15 {
                let n = rng.gen_range(2..=12);
                let g = gilbert_bipartite(n / 2, n - n / 2, 0.35, &mut rng);
                let times = fam.sample(2, n, &mut rng);
                let inst = Instance::unrelated(times, g).unwrap();
                let s = r2_two_approx(&inst).unwrap();
                assert!(s.validate(&inst).is_ok());
                let opt = r2_bipartite_exact(&inst).unwrap();
                let ratio = s.makespan(&inst).ratio_to(&opt.makespan);
                assert!(
                    ratio <= 2.0 + 1e-9,
                    "{}: Algorithm 4 ratio {ratio} > 2 (n={n})",
                    fam.label()
                );
            }
        }
    }

    #[test]
    fn exact_on_dominated_instances() {
        // All components dominated: Algorithm 4 is optimal, not just 2-approx.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let inst = Instance::unrelated(vec![vec![1, 9, 1, 9], vec![9, 1, 9, 1]], g).unwrap();
        let s = r2_two_approx(&inst).unwrap();
        let opt = r2_bipartite_exact(&inst).unwrap();
        assert_eq!(s.makespan(&inst), opt.makespan);
    }

    #[test]
    fn lower_bound_identity_from_theorem21() {
        // Check (T1 + T2 + Textra)/2 <= OPT on random instances: the proof's
        // key inequality.
        let mut rng = StdRng::seed_from_u64(59);
        for _ in 0..20 {
            let n: usize = rng.gen_range(2..=10);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.4, &mut rng);
            let times: Vec<Vec<u64>> = (0..2)
                .map(|_| (0..n).map(|_| rng.gen_range(1..=30)).collect())
                .collect();
            let inst = Instance::unrelated(times, g).unwrap();
            let red = reduce_r2(&inst).unwrap();
            let t_extra: u64 = (0..red.num_components())
                .map(|k| red.times[0][k].min(red.times[1][k]))
                .collect::<Vec<_>>()
                .iter()
                .sum();
            let lb = (red.base1() + red.base2() + t_extra).div_ceil(2);
            let opt = r2_bipartite_exact(&inst).unwrap();
            assert!(
                bisched_model::Rat::integer(lb) <= opt.makespan,
                "proof LB {lb} exceeds OPT {}",
                opt.makespan
            );
        }
    }
}
