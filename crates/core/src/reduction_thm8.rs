//! Theorem 8: the gap reduction from 1-PrExt to
//! `Qm | G = bipartite, p_j = 1 | C_max` (`m ≥ 3`) proving that no
//! `O(n^{1/2-ε})`-approximation exists unless P = NP.
//!
//! Given a 1-PrExt instance `((V, E), (v_1, v_2, v_3))` and a stretch
//! parameter `k`, the reduction attaches six Figure 1 gadgets:
//!
//! * `v_1` ← `H2(kn, 6k²n)` and `H3(1, kn, 6k²n)`,
//! * `v_2` ← `H1(6k²n)` and `H3(1, kn, 6k²n)`,
//! * `v_3` ← `H1(6k²n)` and `H2(kn, 6k²n)`,
//!
//! and schedules the `n' = n + 48k²n + 4kn + 2` unit jobs on machines of
//! speed `49k², 5k, 1, 1/(kn), …`. We keep speeds integral by scaling all
//! of them by `kn` (makespans scale by `1/(kn)`; ratios are untouched), so:
//!
//! * **YES** ⇒ a coloring-derived schedule of makespan ≤ `(n+2)/(kn)`
//!   exists ([`Thm8Reduction::schedule_from_coloring`] builds it);
//! * **NO** ⇒ every schedule has makespan ≥ `1` (= `kn` unscaled), because
//!   a schedule beating that bound uses only `M_1..M_3` lightly enough that
//!   its machine labels *are* a proper color extension
//!   ([`Thm8Reduction::decode_coloring`] extracts it).

use bisched_exact::is_proper_coloring;
use bisched_graph::gadgets::{attach_h1, attach_h2, attach_h3, H1, H2, H3};
use bisched_graph::{is_bipartite, Graph, GraphBuilder, Vertex};
use bisched_model::{Instance, Rat, Schedule};

/// The reduction output with everything needed to verify the gap.
#[derive(Clone, Debug)]
pub struct Thm8Reduction {
    /// The produced `Qm | G = bipartite, p_j = 1 | C_max` instance
    /// (speeds pre-scaled by `kn`).
    pub instance: Instance,
    /// Vertices `0..original_n` are the source graph's jobs.
    pub original_n: usize,
    /// The stretch parameter.
    pub k: u64,
    /// The three precolored vertices.
    pub pins: [Vertex; 3],
    /// Gadget handles, in attachment order
    /// (`v1:H2, v1:H3, v2:H1, v2:H3, v3:H1, v3:H2`).
    pub gadgets: (H2, H3, H1, H3, H1, H2),
}

impl Thm8Reduction {
    /// The YES-side makespan bound `(n+2)/(kn)` in scaled time.
    pub fn yes_bound(&self) -> Rat {
        Rat::new(self.original_n as u64 + 2, self.k * self.original_n as u64)
    }

    /// The NO-side makespan bound (`kn` unscaled = `1` scaled).
    pub fn no_bound(&self) -> Rat {
        Rat::integer(1)
    }

    /// Builds the witness schedule from a proper 3-coloring extension of
    /// the source graph (colors `0,1,2` = machines `M_1..M_3`): gadget
    /// bulk rows go to `M_1`, middle rows to `M_2`, the two `x''` vertices
    /// to `M_3`.
    pub fn schedule_from_coloring(&self, coloring: &[u8]) -> Schedule {
        assert_eq!(coloring.len(), self.original_n);
        let n_prime = self.instance.num_jobs();
        let mut assignment = vec![u32::MAX; n_prime];
        for (v, &c) in coloring.iter().enumerate() {
            assert!(c < 3, "source coloring must use colors 0..3");
            assignment[v] = c as u32;
        }
        let (h2a, h3a, h1b, h3b, h1c, h2c) = &self.gadgets;
        for h1 in [h1b, h1c] {
            for v in h1.leaves.clone() {
                assignment[v as usize] = 0;
            }
        }
        for h2 in [h2a, h2c] {
            for v in h2.top.clone() {
                assignment[v as usize] = 0;
            }
            for v in h2.mid.clone() {
                assignment[v as usize] = 1;
            }
        }
        for h3 in [h3a, h3b] {
            for v in h3.top.clone().chain(h3.star.clone()) {
                assignment[v as usize] = 0;
            }
            for v in h3.second.clone() {
                assignment[v as usize] = 1;
            }
            for v in h3.third.clone() {
                assignment[v as usize] = 2;
            }
        }
        let schedule = Schedule::new(assignment);
        debug_assert!(schedule.validate(&self.instance).is_ok());
        schedule
    }

    /// Reads the source-graph coloring off a schedule: the machine index of
    /// each original vertex. `None` if some original vertex sits beyond
    /// `M_3`. The Theorem 8 forcing argument says: any schedule with
    /// makespan `< 1` (scaled) decodes to a **proper** extension.
    pub fn decode_coloring(&self, schedule: &Schedule) -> Option<Vec<u8>> {
        (0..self.original_n)
            .map(|v| {
                let m = schedule.machine_of(v as u32);
                (m < 3).then_some(m as u8)
            })
            .collect()
    }

    /// Full check of the decoded coloring: proper on the source graph and
    /// honoring the pins `v_i → c_i`.
    pub fn decodes_to_yes(&self, schedule: &Schedule, source: &Graph) -> bool {
        match self.decode_coloring(schedule) {
            None => false,
            Some(colors) => {
                is_proper_coloring(source, &colors)
                    && self
                        .pins
                        .iter()
                        .enumerate()
                        .all(|(c, &v)| colors[v as usize] == c as u8)
            }
        }
    }
}

/// Builds the Theorem 8 reduction. `source` must be bipartite (the
/// NP-hardness of Theorem 3 lives on bipartite inputs), `pins` distinct,
/// `m ≥ 3`, `k ≥ 1`.
pub fn reduce_1prext_to_qm(source: &Graph, pins: [Vertex; 3], k: u64, m: usize) -> Thm8Reduction {
    assert!(m >= 3, "Theorem 8 needs m ≥ 3 machines");
    assert!(k >= 1);
    assert!(
        is_bipartite(source),
        "1-PrExt source must be bipartite here"
    );
    assert!(
        pins[0] != pins[1] && pins[1] != pins[2] && pins[0] != pins[2],
        "precolored vertices must be distinct"
    );
    let n = source.num_vertices();
    assert!(n >= 1);
    let kn = (k * n as u64) as usize;
    let bulk = 6 * (k * k) as usize * n;

    let mut b = GraphBuilder::new(n);
    for (u, v) in source.edges() {
        b.add_edge(u, v);
    }
    let h2a = attach_h2(&mut b, pins[0], kn, bulk);
    let h3a = attach_h3(&mut b, pins[0], 1, kn, bulk);
    let h1b = attach_h1(&mut b, pins[1], bulk);
    let h3b = attach_h3(&mut b, pins[1], 1, kn, bulk);
    let h1c = attach_h1(&mut b, pins[2], bulk);
    let h2c = attach_h2(&mut b, pins[2], kn, bulk);
    let graph = b.build();
    debug_assert_eq!(
        graph.num_vertices(),
        n + 48 * (k * k) as usize * n + 4 * kn + 2,
        "paper's vertex count n' = n + 48k²n + 4kn + 2"
    );
    debug_assert!(is_bipartite(&graph));

    // Speeds ×kn: 49k³n, 5k²n, kn, then unit tails for M_4..M_m.
    let kn64 = k * n as u64;
    let mut speeds = vec![49 * k * k * kn64, 5 * k * kn64, kn64];
    speeds.extend(std::iter::repeat_n(1, m - 3));
    let n_prime = graph.num_vertices();
    let instance = Instance::uniform(speeds, vec![1; n_prime], graph).expect("valid reduction");
    Thm8Reduction {
        instance,
        original_n: n,
        k,
        pins,
        gadgets: (h2a, h3a, h1b, h3b, h1c, h2c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_exact::{
        claw_no_instance, path_yes_instance, precoloring_extension, standard_pins,
    };

    #[test]
    fn vertex_count_matches_paper_formula() {
        for (n_extra, k) in [(0usize, 1u64), (3, 1), (0, 2), (5, 3)] {
            let (g, pins) = path_yes_instance(n_extra);
            let n = g.num_vertices();
            let red = reduce_1prext_to_qm(&g, pins, k, 4);
            assert_eq!(
                red.instance.num_jobs(),
                n + 48 * (k * k) as usize * n + 4 * (k as usize) * n + 2
            );
        }
    }

    #[test]
    fn yes_instance_has_cheap_schedule() {
        let (g, pins) = path_yes_instance(3);
        let coloring = precoloring_extension(&g, &standard_pins(&pins), 3).expect("YES instance");
        for k in [1u64, 2] {
            let red = reduce_1prext_to_qm(&g, pins, k, 5);
            let s = red.schedule_from_coloring(&coloring);
            assert!(s.validate(&red.instance).is_ok());
            let mk = s.makespan(&red.instance);
            assert!(
                mk <= red.yes_bound(),
                "k={k}: witness makespan {mk} > YES bound {}",
                red.yes_bound()
            );
            // And comfortably below the NO bound.
            assert!(mk < red.no_bound());
        }
    }

    #[test]
    fn witness_schedule_decodes_back() {
        let (g, pins) = path_yes_instance(2);
        let coloring = precoloring_extension(&g, &standard_pins(&pins), 3).unwrap();
        let red = reduce_1prext_to_qm(&g, pins, 1, 3);
        let s = red.schedule_from_coloring(&coloring);
        assert!(red.decodes_to_yes(&s, &g));
        assert_eq!(red.decode_coloring(&s).unwrap(), coloring);
    }

    #[test]
    fn gap_bounds_are_separated() {
        let (g, pins) = claw_no_instance(4);
        for k in [2u64, 3, 5] {
            let red = reduce_1prext_to_qm(&g, pins, k, 4);
            let gap = red.no_bound().ratio_to(&red.yes_bound());
            // Gap = kn/(n+2); with n = 8: 8k/10.
            assert!(gap >= k as f64 * 0.8 - 1e-9, "k={k}: gap {gap} too small");
        }
    }

    #[test]
    fn cheap_schedules_on_no_instances_do_not_exist_via_decode() {
        // Contrapositive check on the claw NO-instance: whatever schedule
        // our best heuristic finds, if it were below the NO bound it would
        // decode to a proper extension — which cannot exist.
        let (g, pins) = claw_no_instance(2);
        assert!(precoloring_extension(&g, &standard_pins(&pins), 3).is_none());
        let red = reduce_1prext_to_qm(&g, pins, 2, 4);
        let greedy = bisched_exact::greedy_incumbent(&red.instance).unwrap();
        if greedy.makespan < red.no_bound() {
            assert!(
                red.decodes_to_yes(&greedy.schedule, &g),
                "forcing broken: cheap schedule does not decode to a coloring"
            );
            panic!("cheap schedule found on a NO instance — reduction violated");
        }
    }

    #[test]
    fn scaled_speeds_are_integral_and_sorted() {
        let (g, pins) = path_yes_instance(0);
        let red = reduce_1prext_to_qm(&g, pins, 2, 6);
        let speeds = red.instance.speeds();
        assert!(speeds.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(speeds.len(), 6);
        assert_eq!(speeds[3], 1);
    }

    #[test]
    #[should_panic(expected = "m ≥ 3")]
    fn too_few_machines_rejected() {
        let (g, pins) = path_yes_instance(0);
        reduce_1prext_to_qm(&g, pins, 1, 2);
    }
}
