//! Algorithm 3: reduction of `R2 | G = bipartite | C_max` to `R2 || C_max`.
//!
//! Per connected component the 2-coloring is unique up to a swap, so the
//! only decision is the component's *orientation*. Writing
//! `p*_{i,l} = Σ_{j ∈ V_l^k} p_{i,j}` for the aggregate time of part `l`
//! on machine `i`:
//!
//! * if one orientation is no worse on **both** machines, it is fixed
//!   outright and contributes only base loads `(P'_k, P''_k)`;
//! * otherwise the minima `min(p*_{1,1}, p*_{1,2})` and
//!   `min(p*_{2,1}, p*_{2,2})` are incurred in *every* schedule, and the
//!   orientation choice collapses to a single *difference job* `J_{n+k}`
//!   with `p_{i,n+k} = max − min` on each machine.
//!
//! The base loads plus difference jobs form an ordinary `R2 || C_max`
//! instance whose schedules are in makespan-preserving bijection with the
//! original ones (Theorem 21's proof); [`reconstruct`] maps back.

use bisched_graph::{bipartition, Components, Side};
use bisched_model::{Instance, MachineEnvironment, Schedule};

use bisched_exact::OracleError;

/// How a component's orientation is decided after reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Orientation fixed by dominance: the left part goes to this machine.
    Fixed {
        /// Machine (0 or 1) receiving the component's left part.
        left_on: u32,
    },
    /// Orientation decided by the difference job: if the reduced job lands
    /// on `M_1` the left part goes to `left_on_if_m1`, otherwise to the
    /// other machine.
    Choice {
        /// Machine receiving the left part when the difference job is on
        /// machine 0.
        left_on_if_m1: u32,
    },
}

/// Output of Algorithm 3.
#[derive(Clone, Debug)]
pub struct ReducedR2 {
    /// `2 × c` times of the difference jobs (zeros for fixed components).
    pub times: Vec<Vec<u64>>,
    /// `P'`: per-component unavoidable load on `M_1`.
    pub p_prime: Vec<u64>,
    /// `P''`: per-component unavoidable load on `M_2`.
    pub p_pprime: Vec<u64>,
    /// Orientation decoding per component.
    pub orientations: Vec<Orientation>,
    /// Component structure (for reconstruction).
    components: Components,
    /// Per-vertex side in the bipartition.
    sides: Vec<Side>,
}

impl ReducedR2 {
    /// Number of components / reduced jobs.
    pub fn num_components(&self) -> usize {
        self.p_prime.len()
    }

    /// Total unavoidable load on `M_1` (`Σ_k P'_k`).
    pub fn base1(&self) -> u64 {
        self.p_prime.iter().sum()
    }

    /// Total unavoidable load on `M_2` (`Σ_k P''_k`).
    pub fn base2(&self) -> u64 {
        self.p_pprime.iter().sum()
    }

    /// Maps an assignment of the `c` difference jobs back to a schedule of
    /// the original jobs.
    pub fn reconstruct(&self, reduced_assignment: &[u32]) -> Schedule {
        assert_eq!(reduced_assignment.len(), self.num_components());
        let n = self.sides.len();
        let mut assignment = vec![0u32; n];
        for (k, orient) in self.orientations.iter().enumerate() {
            let left_on = match *orient {
                Orientation::Fixed { left_on } => left_on,
                Orientation::Choice { left_on_if_m1 } => {
                    if reduced_assignment[k] == 0 {
                        left_on_if_m1
                    } else {
                        1 - left_on_if_m1
                    }
                }
            };
            for &v in self.components.members(k as u32) {
                assignment[v as usize] = match self.sides[v as usize] {
                    Side::Left => left_on,
                    Side::Right => 1 - left_on,
                };
            }
        }
        Schedule::new(assignment)
    }
}

/// Algorithm 3. Errors if the instance is not `R2` or `G` not bipartite.
pub fn reduce_r2(inst: &Instance) -> Result<ReducedR2, OracleError> {
    if inst.num_machines() != 2 {
        return Err(OracleError::NotTwoMachines {
            got: inst.num_machines(),
        });
    }
    let times = match inst.env() {
        MachineEnvironment::Unrelated { times } => times,
        env => return Err(OracleError::WrongEnvironment { got: env.alpha() }),
    };
    let g = inst.graph();
    let bp = bipartition(g).map_err(|_| OracleError::NotBipartite)?;
    let components = Components::of(g);

    let c = components.count();
    let mut red_times = vec![vec![0u64; c], vec![0u64; c]];
    let mut p_prime = vec![0u64; c];
    let mut p_pprime = vec![0u64; c];
    let mut orientations = Vec::with_capacity(c);

    for (k, members) in components.iter().enumerate() {
        // p*_{i,l}: aggregate time of part l on machine i.
        let (mut p11, mut p12, mut p21, mut p22) = (0u64, 0u64, 0u64, 0u64);
        for &v in members {
            let (t1, t2) = (times[0][v as usize], times[1][v as usize]);
            match bp.side(v) {
                Side::Left => {
                    p11 += t1;
                    p21 += t2;
                }
                Side::Right => {
                    p12 += t1;
                    p22 += t2;
                }
            }
        }
        if p11 <= p12 && p22 <= p21 {
            // Left on M1, right on M2 dominates.
            p_prime[k] = p11;
            p_pprime[k] = p22;
            orientations.push(Orientation::Fixed { left_on: 0 });
        } else if p12 <= p11 && p21 <= p22 {
            // Crossed orientation dominates.
            p_prime[k] = p12;
            p_pprime[k] = p21;
            orientations.push(Orientation::Fixed { left_on: 1 });
        } else {
            // Genuine trade-off; maxima are aligned (see module docs).
            red_times[0][k] = p11.max(p12) - p11.min(p12);
            red_times[1][k] = p21.max(p22) - p21.min(p22);
            p_prime[k] = p11.min(p12);
            p_pprime[k] = p21.min(p22);
            // Difference job on M1 realizes the orientation whose M1 cost
            // is the max: left if p11 > p12, right otherwise.
            let left_on_if_m1 = if p11 > p12 { 0 } else { 1 };
            orientations.push(Orientation::Choice { left_on_if_m1 });
        }
    }
    Ok(ReducedR2 {
        times: red_times,
        p_prime,
        p_pprime,
        orientations,
        components,
        sides: bp.sides().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_graph::{gilbert_bipartite, Graph};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn r2(times: Vec<Vec<u64>>, g: Graph) -> Instance {
        Instance::unrelated(times, g).unwrap()
    }

    #[test]
    fn dominated_component_is_fixed() {
        // Edge {0,1}: left {0}, right {1}. Orientation A costs (1, 1);
        // crossed costs (9, 9). A dominates.
        let inst = r2(
            vec![vec![1, 9], vec![9, 1]],
            Graph::from_edges(2, &[(0, 1)]),
        );
        let red = reduce_r2(&inst).unwrap();
        assert_eq!(red.orientations[0], Orientation::Fixed { left_on: 0 });
        assert_eq!(red.times[0][0], 0);
        assert_eq!(red.times[1][0], 0);
        assert_eq!(red.p_prime[0], 1);
        assert_eq!(red.p_pprime[0], 1);
    }

    #[test]
    fn crossing_component_gets_difference_job() {
        // Left {0}, right {1}: p*11=10, p*12=2, p*21=8, p*22=3.
        // Neither orientation dominates: A costs (10, 3), B costs (2, 8).
        let inst = r2(
            vec![vec![10, 2], vec![8, 3]],
            Graph::from_edges(2, &[(0, 1)]),
        );
        let red = reduce_r2(&inst).unwrap();
        assert_eq!(red.times[0][0], 8); // 10 - 2
        assert_eq!(red.times[1][0], 5); // 8 - 3
        assert_eq!(red.p_prime[0], 2);
        assert_eq!(red.p_pprime[0], 3);
        assert_eq!(
            red.orientations[0],
            Orientation::Choice { left_on_if_m1: 0 }
        );
    }

    #[test]
    fn one_sided_dominance_is_fixed_crosswise() {
        // B dominates: crossed orientation (2, 3) beats (10, 8) pointwise.
        let inst = r2(
            vec![vec![10, 2], vec![3, 8]],
            Graph::from_edges(2, &[(0, 1)]),
        );
        let red = reduce_r2(&inst).unwrap();
        assert_eq!(red.orientations[0], Orientation::Fixed { left_on: 1 });
        assert_eq!(red.p_prime[0], 2);
        assert_eq!(red.p_pprime[0], 3);
    }

    #[test]
    fn isolated_vertex_reduces_to_itself() {
        let inst = r2(vec![vec![4], vec![7]], Graph::empty(1));
        let red = reduce_r2(&inst).unwrap();
        assert_eq!(red.times[0][0], 4);
        assert_eq!(red.times[1][0], 7);
        assert_eq!(red.p_prime[0], 0);
        assert_eq!(red.p_pprime[0], 0);
    }

    #[test]
    fn reconstruction_preserves_makespan_bijection() {
        // Every assignment of reduced jobs must reconstruct to a feasible
        // schedule with makespan = base + reduced loads.
        let mut rng = StdRng::seed_from_u64(47);
        for _ in 0..25 {
            let n: usize = rng.gen_range(2..=10);
            let g = gilbert_bipartite(n / 2, n - n / 2, 0.4, &mut rng);
            let times: Vec<Vec<u64>> = (0..2)
                .map(|_| (0..n).map(|_| rng.gen_range(1..=20)).collect())
                .collect();
            let inst = r2(times.clone(), g);
            let red = reduce_r2(&inst).unwrap();
            let c = red.num_components();
            // Try a handful of reduced assignments.
            for code in 0..(1u32 << c.min(6)) {
                let red_assign: Vec<u32> = (0..c).map(|k| code >> k & 1).collect();
                let s = red.reconstruct(&red_assign);
                assert!(s.validate(&inst).is_ok());
                // Loads decompose: base + chosen difference jobs.
                let mut l1 = red.base1();
                let mut l2 = red.base2();
                for (k, &a) in red_assign.iter().enumerate() {
                    if a == 0 {
                        l1 += red.times[0][k];
                    } else {
                        l2 += red.times[1][k];
                    }
                }
                assert_eq!(s.loads(&inst), vec![l1, l2], "code={code}");
            }
        }
    }

    #[test]
    fn rejects_non_r2() {
        let q = Instance::uniform(vec![1, 1], vec![1], Graph::empty(1)).unwrap();
        assert!(reduce_r2(&q).is_err());
        let r3 = r2_or_3(3);
        assert!(reduce_r2(&r3).is_err());
    }

    fn r2_or_3(m: usize) -> Instance {
        Instance::unrelated(vec![vec![1]; m], Graph::empty(1)).unwrap()
    }

    #[test]
    fn rejects_odd_cycle() {
        let inst = r2(vec![vec![1; 5], vec![1; 5]], Graph::cycle(5));
        assert_eq!(reduce_r2(&inst).unwrap_err(), OracleError::NotBipartite);
    }
}
