//! Structured solve results: what ran, what it promised, how long it took.

use std::time::Duration;

use bisched_model::{Rat, Schedule};

use super::guarantee::Guarantee;
use super::method::Method;

/// One engine's outcome inside a solve (recorded even when another engine
/// ended up producing the returned schedule).
#[derive(Clone, Debug)]
pub enum EngineOutcome {
    /// The engine produced a feasible schedule.
    Solved {
        /// Makespan of that engine's schedule.
        makespan: Rat,
        /// The guarantee that engine carries on this instance.
        guarantee: Guarantee,
    },
    /// The engine does not apply to this instance (wrong environment,
    /// machine count, or job structure).
    NotApplicable {
        /// Human-readable precondition that failed.
        reason: String,
    },
    /// The engine applied but could not produce a schedule (e.g. a node
    /// budget ran out before any incumbent).
    Failed {
        /// What went wrong.
        reason: String,
    },
}

/// Named machine-readable counters from one engine run — the
/// dispatch-training substrate ROADMAP's "measured, not hardcoded"
/// Auto-dispatch item needs. A small ordered list rather than a map:
/// engines report a handful of counters, insertion order is the natural
/// display order, and `&'static str` keys keep the hot paths
/// allocation-free.
///
/// ```
/// use bisched_core::EngineStats;
/// let mut s = EngineStats::new();
/// s.set("nodes", 42);
/// s.set("nodes", 43); // overwrite, not append
/// assert_eq!(s.get("nodes"), Some(43));
/// assert_eq!(s.iter().count(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    entries: Vec<(&'static str, u64)>,
}

impl EngineStats {
    /// An empty counter set (what non-instrumented engines report).
    pub fn new() -> Self {
        EngineStats::default()
    }

    /// Sets (or overwrites) one counter.
    pub fn set(&mut self, name: &'static str, value: u64) {
        match self.entries.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.entries.push((name, value)),
        }
    }

    /// Reads one counter back.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// `true` when the engine reported no counters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().copied()
    }
}

/// A single engine invocation: method, outcome, wall time, counters.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// The engine that ran.
    pub method: Method,
    /// What happened.
    pub outcome: EngineOutcome,
    /// The engine's machine-readable runtime counters (empty for engines
    /// that report none, and for attempts that failed before running).
    pub stats: EngineStats,
    /// Wall-clock time spent inside **this engine alone** — in a
    /// portfolio race each member is timed from its own start to its own
    /// finish, never cumulatively from the portfolio's start.
    pub wall_time: Duration,
    /// `true` iff a portfolio race cancelled this engine — either
    /// mid-run (another member proved optimality first; the outcome is
    /// its incumbent so far) or before it started (`wall_time` is zero
    /// and the outcome is a `Failed` placeholder). Cancelled attempts
    /// are not losses: dispatch-training data should count them
    /// separately.
    pub cancelled: bool,
}

impl EngineRun {
    /// The makespan, when the engine solved.
    pub fn makespan(&self) -> Option<&Rat> {
        match &self.outcome {
            EngineOutcome::Solved { makespan, .. } => Some(makespan),
            _ => None,
        }
    }
}

/// The result of [`Solver::solve`](crate::Solver::solve): the schedule
/// plus full provenance.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// The best schedule found.
    pub schedule: Schedule,
    /// Its makespan.
    pub makespan: Rat,
    /// The engine that produced **this** schedule (when several ran, the
    /// one whose schedule won).
    pub method: Method,
    /// The strongest guarantee that provably applies to this schedule.
    pub guarantee: Guarantee,
    /// An unconditional lower bound on `C*_max` from
    /// `bisched_model::bounds` (capacity bound for `P`/`Q`, per-job row
    /// minima for `R`; ignores the incompatibility graph, so `C*` may be
    /// strictly larger).
    pub lower_bound: Rat,
    /// Every engine invocation this solve performed, in execution order —
    /// including fallbacks that lost and methods that did not apply.
    pub attempts: Vec<EngineRun>,
    /// Total wall time of the solve, engines plus dispatch.
    pub total_time: Duration,
    /// Wall time of the portfolio race, start of the first engine to the
    /// last one settling (`None` outside `MethodPolicy::Portfolio`).
    /// With concurrent engines this is less than the sum of the
    /// attempts' own `wall_time`s.
    pub race_time: Option<Duration>,
    /// The seed the solver was configured with, recorded so runs are
    /// attributable even once randomized engines exist (today's engines
    /// are all deterministic).
    pub seed: u64,
}

impl SolveReport {
    /// `makespan / lower_bound` as `f64`, when the lower bound is
    /// positive — a cheap optimality-gap estimate (`1.0` means provably
    /// optimal *with respect to the graph-blind bound*).
    pub fn gap_estimate(&self) -> Option<f64> {
        if self.lower_bound > Rat::ZERO {
            Some(self.makespan.ratio_to(&self.lower_bound))
        } else {
            None
        }
    }

    /// The attempt whose schedule this report returned: the first
    /// `Solved` run of the winning method. `None` only for reports
    /// without attempt provenance (e.g. hand-built in tests).
    pub fn winner_run(&self) -> Option<&EngineRun> {
        self.attempts
            .iter()
            .find(|run| run.method == self.method && run.makespan().is_some())
    }

    /// Per-engine attempt counts as `(method-name, attempts)` pairs in
    /// first-attempt order — the "what ran, how often" companion to the
    /// winner's counters (a portfolio may try an engine once; a
    /// fallback chain may retry).
    pub fn attempt_counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for run in &self.attempts {
            let name = run.method.name();
            match counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => counts.push((name, 1)),
            }
        }
        counts
    }
}
