//! The solving engine: a configurable dispatcher over every algorithm in
//! the workspace.
//!
//! The paper is, at heart, a dispatch table — which algorithm applies to
//! which machine environment and what it can promise. [`Solver`] makes
//! that table a first-class, configurable object instead of a frozen
//! `match`:
//!
//! ```
//! use bisched_core::{MethodPolicy, SolverConfig};
//! use bisched_graph::Graph;
//! use bisched_model::Instance;
//!
//! let inst = Instance::uniform(
//!     vec![2, 1],
//!     vec![4, 3, 2, 3],
//!     Graph::from_edges(4, &[(0, 1), (2, 3)]),
//! )
//! .unwrap();
//!
//! let solver = SolverConfig::new().eps(0.1).build().unwrap();
//! let report = solver.solve(&inst).unwrap();
//! assert!(report.schedule.validate(&inst).is_ok());
//! assert!(report.makespan >= report.lower_bound);
//! println!("{} via {} ({})", report.makespan, report.method, report.guarantee);
//! ```
//!
//! ## The `Auto` dispatch table
//!
//! | instance | engines tried | guarantee of the result |
//! |---|---|---|
//! | any, `n ≤ auto_exact_jobs` | branch & bound, then CP when the node budget ran out | optimal when either search completes |
//! | `Q2`/`P2`, `Σp_j ≤ exact_budget` | exact subset-sum DP | optimal (Theorem 4 regime) |
//! | `P`, `m ≥ 3` | best of BJW [3] and Algorithm 1 | `2 · C*` when BJW ran (best possible, [3]) |
//! | `Q`, `m ≥ 3` (or huge `Σp_j`) | Algorithm 1 | `√(Σp_j) · C*` (Theorem 9) |
//! | `R2`, row mass ≤ `exact_budget` | exact load DP | optimal |
//! | `R2` otherwise | Algorithm 5 (FPTAS) | `(1+ε) · C*` (Theorem 22) |
//! | `R`, `m ≥ 3` | graph-aware greedy | none — Theorem 24 proves none is possible |
//!
//! Every engine that ran (winners, losers, and inapplicable ones) is
//! recorded in [`SolveReport::attempts`] with its wall time, and the
//! returned schedule is labelled with the method that **actually produced
//! it** — when Algorithm 1 beats BJW on identical machines the report
//! says so.
//!
//! [`MethodPolicy::Force`] runs exactly one engine (or fails with a typed
//! [`SolveError::NotApplicable`]); [`MethodPolicy::Portfolio`] **races** a
//! user-chosen set concurrently — members share a cancellation flag and a
//! running incumbent bound through [`bisched_exact::SearchCtl`], the first
//! proven-optimal answer cancels the rest, and the kept schedule is never
//! worse than any member's. Bulk workloads go through
//! [`Solver::solve_batch`].

mod config;
mod engines;
mod guarantee;
mod method;
mod report;

pub use config::{
    SolverConfig, DEFAULT_AUTO_EXACT_JOBS, DEFAULT_BNB_NODE_LIMIT, DEFAULT_CP_NODE_LIMIT,
    DEFAULT_EPS, DEFAULT_EXACT_BUDGET,
};
pub use guarantee::Guarantee;
pub use method::{Method, MethodPolicy};
pub use report::{EngineOutcome, EngineRun, EngineStats, SolveReport};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use bisched_exact::SearchCtl;
use bisched_model::{
    capacity_lower_bound, unrelated_lower_bound, Instance, MachineEnvironment, Rat,
};
use rayon::prelude::*;

use engines::{run_method, run_method_ctl, EngineFailure, EngineSolution};

/// Errors of the solving engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The incompatibility graph is not bipartite — outside the paper's
    /// model, and every engine here relies on 2-colorability.
    NotBipartite,
    /// No feasible schedule exists (one machine, at least one edge).
    Infeasible,
    /// The configuration is self-contradictory (bad `ε`, empty
    /// portfolio); raised by [`SolverConfig::build`].
    InvalidConfig(String),
    /// A forced method's preconditions do not hold on this instance.
    NotApplicable {
        /// The method that was forced.
        method: Method,
        /// The precondition that failed.
        reason: String,
    },
    /// The engine applied but produced no schedule.
    EngineFailed {
        /// The engine.
        method: Method,
        /// What went wrong.
        reason: String,
    },
    /// No engine in the policy produced a schedule.
    NoEngineSolved {
        /// Per-method reasons.
        reasons: Vec<(Method, String)>,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NotBipartite => write!(f, "incompatibility graph is not bipartite"),
            SolveError::Infeasible => write!(f, "no feasible schedule exists"),
            SolveError::InvalidConfig(m) => write!(f, "invalid solver config: {m}"),
            SolveError::NotApplicable { method, reason } => {
                write!(f, "method {method} not applicable: {reason}")
            }
            SolveError::EngineFailed { method, reason } => {
                write!(f, "method {method} failed: {reason}")
            }
            SolveError::NoEngineSolved { reasons } => {
                write!(f, "no engine solved the instance:")?;
                for (m, r) in reasons {
                    write!(f, " [{m}: {r}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// The configurable solving engine; built from a [`SolverConfig`].
///
/// A `Solver` is cheap to construct, immutable, and reusable across
/// instances and threads.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    config: SolverConfig,
}

impl Solver {
    /// A solver with the default configuration (the old façade's
    /// behaviour plus the exact engines `Auto` now reaches).
    pub fn new() -> Self {
        Solver::default()
    }

    pub(crate) fn from_config(config: SolverConfig) -> Self {
        Solver { config }
    }

    /// The configuration this solver runs with.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Solves one instance under the configured policy.
    pub fn solve(&self, inst: &Instance) -> Result<SolveReport, SolveError> {
        let _solve_span = bisched_obs::span_arg("solve", "core", "jobs", inst.num_jobs() as u64);
        let t0 = Instant::now();
        if !bisched_graph::is_bipartite(inst.graph()) {
            return Err(SolveError::NotBipartite);
        }
        if inst.num_machines() == 1 && inst.graph().num_edges() > 0 {
            return Err(SolveError::Infeasible);
        }
        let mut attempts: Vec<EngineRun> = Vec::new();
        let mut race_time = None;
        let outcome = match &self.config.policy {
            MethodPolicy::Auto => self.solve_auto(inst, &mut attempts),
            MethodPolicy::Force(method) => match self.attempt(inst, *method, &mut attempts) {
                Some(sol) => Ok((sol, *method)),
                None => Err(match attempts.last().map(|a| &a.outcome) {
                    Some(EngineOutcome::NotApplicable { reason }) => SolveError::NotApplicable {
                        method: *method,
                        reason: reason.clone(),
                    },
                    Some(EngineOutcome::Failed { reason }) => SolveError::EngineFailed {
                        method: *method,
                        reason: reason.clone(),
                    },
                    _ => unreachable!("attempt records exactly one outcome"),
                }),
            },
            MethodPolicy::Portfolio(methods) => {
                let (outcome, elapsed) = self.solve_race(inst, methods, &mut attempts);
                race_time = Some(elapsed);
                outcome
            }
        };
        let (best, method) = outcome?;
        let guarantee = strongest_guarantee(inst, &attempts, best.guarantee);
        Ok(SolveReport {
            schedule: best.schedule,
            makespan: best.makespan,
            method,
            guarantee,
            lower_bound: graph_blind_lower_bound(inst),
            attempts,
            total_time: t0.elapsed(),
            race_time,
            seed: self.config.seed,
        })
    }

    /// Solves a batch of instances, one report (or error) per instance,
    /// **in input order**.
    ///
    /// The batch fans out over rayon (`Solver` is `Send + Sync`, so one
    /// solver serves every worker); indexed collection keeps the output
    /// deterministic and identical to solving the slice sequentially.
    /// This is the hot path of `bisched-service`'s micro-batching worker
    /// pool.
    pub fn solve_batch(&self, instances: &[Instance]) -> Vec<Result<SolveReport, SolveError>> {
        instances.par_iter().map(|inst| self.solve(inst)).collect()
    }

    /// Runs one engine, recording the attempt; returns the solution when
    /// it solved.
    fn attempt(
        &self,
        inst: &Instance,
        method: Method,
        attempts: &mut Vec<EngineRun>,
    ) -> Option<EngineSolution> {
        let t0 = Instant::now();
        let result = run_method(&self.config, inst, method);
        let wall_time = t0.elapsed();
        match result {
            Ok(sol) => {
                attempts.push(EngineRun {
                    method,
                    outcome: EngineOutcome::Solved {
                        makespan: sol.makespan,
                        guarantee: sol.guarantee.clone(),
                    },
                    stats: sol.stats.clone(),
                    wall_time,
                    cancelled: false,
                });
                Some(sol)
            }
            Err(EngineFailure::NotApplicable(reason)) => {
                attempts.push(EngineRun {
                    method,
                    outcome: EngineOutcome::NotApplicable { reason },
                    stats: EngineStats::new(),
                    wall_time,
                    cancelled: false,
                });
                None
            }
            Err(EngineFailure::Failed(reason)) => {
                attempts.push(EngineRun {
                    method,
                    outcome: EngineOutcome::Failed { reason },
                    stats: EngineStats::new(),
                    wall_time,
                    cancelled: false,
                });
                None
            }
        }
    }

    /// The `Portfolio` policy: a concurrent race over the members.
    ///
    /// Up to `available_parallelism` workers pull member indices off a
    /// shared queue; every member runs through [`run_method_ctl`] with one
    /// shared [`SearchCtl`], so the budgeted engines prune against each
    /// other's incumbents and the first proven-optimal answer cancels the
    /// rest (members that have not started yet are recorded as
    /// zero-wall-time cancelled attempts). Results are reassembled in
    /// member (list) order; returns the outcome plus the race's own wall
    /// time.
    fn solve_race(
        &self,
        inst: &Instance,
        methods: &[Method],
        attempts: &mut Vec<EngineRun>,
    ) -> (Result<(EngineSolution, Method), SolveError>, Duration) {
        let t0 = Instant::now();
        let race_span =
            bisched_obs::span_arg("portfolio_race", "race", "members", methods.len() as u64);
        let ctl = SearchCtl::new();
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, EngineRun, Option<EngineSolution>)>> =
            Mutex::new(Vec::with_capacity(methods.len()));
        // `available_parallelism` is a syscall (~15µs) — cache it, the
        // dense race cells themselves close in ~100µs.
        static HW_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let hw =
            *HW_THREADS.get_or_init(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
        let workers = methods.len().min(hw);
        let race_worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(&method) = methods.get(i) else { break };
            let (run, sol) = self.race_member(inst, method, &ctl, t0);
            results.lock().unwrap().push((i, run, sol));
        };
        if workers == 1 {
            // A single hardware thread degenerates the race to
            // sequential-with-skip; running it inline skips the
            // thread-scope setup, which would otherwise dwarf the
            // sub-millisecond cells.
            race_worker();
        } else {
            rayon::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|_| race_worker());
                }
            });
        }
        let race_time = t0.elapsed();
        drop(race_span);
        let mut ordered = results.into_inner().unwrap();
        ordered.sort_by_key(|(i, ..)| *i);

        // Winner: smallest makespan, earliest member on ties.
        let mut winner: Option<usize> = None;
        for (idx, (_, _, sol)) in ordered.iter().enumerate() {
            if let Some(sol) = sol {
                let better = match winner {
                    None => true,
                    Some(w) => sol.makespan < ordered[w].2.as_ref().unwrap().makespan,
                };
                if better {
                    winner = Some(idx);
                }
            }
        }
        let Some(w) = winner else {
            attempts.extend(ordered.into_iter().map(|(_, run, _)| run));
            return (pick_best(Vec::new(), attempts), race_time);
        };
        let winner_mk = ordered[w].2.as_ref().unwrap().makespan;

        // Any member's completed proof certifies the winner: a complete
        // search (even one whose own pruning leaned on the shared bound)
        // shows no schedule beats the best *achieved* makespan, and a CP
        // `proven_lower` at or above the winner is an absolute bound (see
        // `bisched_exact::search_ctl` for the soundness argument).
        let certified = ordered.iter().any(|(_, run, sol)| {
            sol.is_some()
                && (matches!(
                    run.outcome,
                    EngineOutcome::Solved {
                        guarantee: Guarantee::Optimal,
                        ..
                    }
                ) || sol
                    .as_ref()
                    .and_then(|s| s.proven_lower.as_ref())
                    .is_some_and(|lb| winner_mk <= *lb))
        });

        // A branch-and-bound "complete" under the shared bound proves
        // nothing better than the best achieved makespan — when its own
        // incumbent lost the race, that incumbent is only a heuristic, so
        // demote its record before the guarantees transfer.
        for (_, run, sol) in ordered.iter_mut() {
            if run.method == Method::BranchAndBound {
                if let Some(sol) = sol {
                    if sol.guarantee == Guarantee::Optimal && sol.makespan > winner_mk {
                        sol.guarantee = Guarantee::Heuristic;
                        if let EngineOutcome::Solved { guarantee, .. } = &mut run.outcome {
                            *guarantee = Guarantee::Heuristic;
                        }
                    }
                }
            }
        }

        let mut best = ordered[w].2.take().unwrap();
        let method = ordered[w].1.method;
        if certified {
            best.guarantee = Guarantee::Optimal;
        }
        attempts.extend(ordered.into_iter().map(|(_, run, _)| run));
        (Ok((best, method)), race_time)
    }

    /// Runs one race member against the shared [`SearchCtl`]: skips it
    /// (as a cancelled zero-time attempt) when the race is already over,
    /// publishes its achieved makespan, and cancels the race on a proven
    /// optimum.
    fn race_member(
        &self,
        inst: &Instance,
        method: Method,
        ctl: &SearchCtl,
        race_start: Instant,
    ) -> (EngineRun, Option<EngineSolution>) {
        if ctl.cancelled() {
            bisched_obs::instant("race_member_skipped", "race", "member", method as u64);
            return (
                EngineRun {
                    method,
                    outcome: EngineOutcome::Failed {
                        reason: "cancelled before start: a racing engine already proved optimality"
                            .into(),
                    },
                    stats: EngineStats::new(),
                    wall_time: Duration::ZERO,
                    cancelled: true,
                },
                None,
            );
        }
        let cap = self
            .config
            .race_deadline
            .map(|d| d.saturating_sub(race_start.elapsed()));
        let mut member_span = bisched_obs::span_arg(method.name(), "race", "member", method as u64);
        let t0 = Instant::now();
        let result = run_method_ctl(&self.config, inst, method, Some(ctl), cap);
        let wall_time = t0.elapsed();
        match result {
            Ok(sol) => {
                ctl.publish_makespan(&sol.makespan);
                bisched_obs::instant(
                    "race_publish",
                    "race",
                    "makespan_floor",
                    sol.makespan.floor(),
                );
                if sol.guarantee == Guarantee::Optimal {
                    ctl.cancel();
                    bisched_obs::instant("race_cancel", "race", "winner", method as u64);
                }
                if sol.cancelled {
                    member_span.set_arg("cancelled_mid_run", 1);
                }
                let run = EngineRun {
                    method,
                    outcome: EngineOutcome::Solved {
                        makespan: sol.makespan,
                        guarantee: sol.guarantee.clone(),
                    },
                    stats: sol.stats.clone(),
                    wall_time,
                    cancelled: sol.cancelled,
                };
                (run, Some(sol))
            }
            Err(EngineFailure::NotApplicable(reason)) => (
                EngineRun {
                    method,
                    outcome: EngineOutcome::NotApplicable { reason },
                    stats: EngineStats::new(),
                    wall_time,
                    cancelled: false,
                },
                None,
            ),
            Err(EngineFailure::Failed(reason)) => (
                EngineRun {
                    method,
                    outcome: EngineOutcome::Failed { reason },
                    stats: EngineStats::new(),
                    wall_time,
                    cancelled: false,
                },
                None,
            ),
        }
    }

    /// The `Auto` policy: the module-level dispatch table, with every
    /// fallback recorded.
    fn solve_auto(
        &self,
        inst: &Instance,
        attempts: &mut Vec<EngineRun>,
    ) -> Result<(EngineSolution, Method), SolveError> {
        let cfg = &self.config;
        let m = inst.num_machines();
        let mut candidates: Vec<(Method, EngineSolution)> = Vec::new();

        // Small instances: a complete search beats any approximation.
        if inst.num_jobs() <= cfg.auto_exact_jobs {
            if let Some(sol) = self.attempt(inst, Method::BranchAndBound, attempts) {
                if sol.guarantee == Guarantee::Optimal {
                    return Ok((sol, Method::BranchAndBound));
                }
                // Incomplete search: keep the incumbent as a candidate and
                // let the guaranteed engines compete below.
                candidates.push((Method::BranchAndBound, sol));
                // The node budget ran out — dense conflict graphs are
                // exactly where propagation pays, so give CP one shot at
                // closing the proof before falling back to approximations.
                if let Some(sol) = self.attempt(inst, Method::Cp, attempts) {
                    if sol.guarantee == Guarantee::Optimal {
                        return Ok((sol, Method::Cp));
                    }
                    candidates.push((Method::Cp, sol));
                }
            }
        }

        match inst.env() {
            MachineEnvironment::Unrelated { times } => {
                if m == 2 {
                    // The exact R2 DP is pseudo-polynomial in the machine-1
                    // row mass; prefer it while that fits the budget.
                    let row_mass: u64 = times[0].iter().sum();
                    if row_mass <= cfg.exact_budget {
                        if let Some(sol) = self.attempt(inst, Method::ExactR2, attempts) {
                            return Ok((sol, Method::ExactR2));
                        }
                    }
                    if let Some(sol) = self.attempt(inst, Method::R2Fptas, attempts) {
                        candidates.push((Method::R2Fptas, sol));
                    }
                } else {
                    // R, m >= 3: Theorem 24 — heuristic only.
                    if let Some(sol) = self.attempt(inst, Method::GreedyR, attempts) {
                        candidates.push((Method::GreedyR, sol));
                    }
                }
            }
            _ => {
                if m == 2 && inst.total_processing() <= cfg.exact_budget {
                    if let Some(sol) = self.attempt(inst, Method::ExactQ2, attempts) {
                        return Ok((sol, Method::ExactQ2));
                    }
                }
                if matches!(inst.env(), MachineEnvironment::Identical { .. }) && m >= 3 {
                    // Best-of: BJW carries the stronger (ratio 2) label,
                    // but Algorithm 1 sometimes builds the better
                    // schedule; both run, the winner is reported.
                    if let Some(sol) = self.attempt(inst, Method::Bjw, attempts) {
                        candidates.push((Method::Bjw, sol));
                    }
                }
                if let Some(sol) = self.attempt(inst, Method::Alg1, attempts) {
                    candidates.push((Method::Alg1, sol));
                }
            }
        }
        pick_best(candidates, attempts)
    }
}

/// Picks the candidate with the smallest makespan (ties: the engine that
/// ran first wins). With no candidates, reports every attempt's reason.
fn pick_best(
    candidates: Vec<(Method, EngineSolution)>,
    attempts: &[EngineRun],
) -> Result<(EngineSolution, Method), SolveError> {
    let mut best: Option<(Method, EngineSolution)> = None;
    for (method, sol) in candidates {
        if best.as_ref().is_none_or(|(_, b)| sol.makespan < b.makespan) {
            best = Some((method, sol));
        }
    }
    match best {
        Some((method, sol)) => Ok((sol, method)),
        None => Err(SolveError::NoEngineSolved {
            reasons: attempts
                .iter()
                .map(|run| {
                    let reason = match &run.outcome {
                        EngineOutcome::NotApplicable { reason }
                        | EngineOutcome::Failed { reason } => reason.clone(),
                        EngineOutcome::Solved { .. } => {
                            unreachable!("a solved attempt is always a candidate")
                        }
                    };
                    (run.method, reason)
                })
                .collect(),
        }),
    }
}

/// The strongest guarantee that provably applies to the returned (best)
/// schedule: its own, or any solved engine's ratio bound — the best
/// makespan is `≤` every solved engine's, so their multiplicative bounds
/// transfer.
fn strongest_guarantee(inst: &Instance, attempts: &[EngineRun], own: Guarantee) -> Guarantee {
    let mut best = own;
    for run in attempts {
        if let EngineOutcome::Solved { guarantee, .. } = &run.outcome {
            if guarantee.at_least_as_strong(&best, inst) {
                best = guarantee.clone();
            }
        }
    }
    best
}

/// Graph-oblivious lower bound on `C*_max` from `bisched_model::bounds`.
fn graph_blind_lower_bound(inst: &Instance) -> Rat {
    match inst.env() {
        MachineEnvironment::Unrelated { times } => Rat::integer(unrelated_lower_bound(times)),
        _ => capacity_lower_bound(&inst.speeds(), inst.processing_all()),
    }
}

// `Solver` is shared across the service's worker threads and `SolveReport`s
// cross thread boundaries through its response channels; keep both facts
// checked at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Solver>();
    assert_send_sync::<SolverConfig>();
    assert_send_sync::<SolveReport>();
    assert_send_sync::<SolveError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_graph::Graph;
    use bisched_model::Instance;

    fn solver() -> Solver {
        Solver::new()
    }

    #[test]
    fn q2_dispatches_to_exact() {
        let inst = Instance::uniform(vec![2, 1], vec![30; 12], Graph::path(12)).unwrap();
        let s = solver().solve(&inst).unwrap();
        assert_eq!(s.method, Method::ExactQ2);
        assert_eq!(s.guarantee, Guarantee::Optimal);
        assert!(s.schedule.validate(&inst).is_ok());
        assert!(s.makespan >= s.lower_bound);
    }

    #[test]
    fn qm_dispatches_to_alg1() {
        let inst = Instance::uniform(
            vec![3, 2, 1],
            vec![2; 12],
            Graph::cycle(8).disjoint_union(&Graph::empty(4)).0,
        )
        .unwrap();
        let s = solver().solve(&inst).unwrap();
        assert_eq!(s.method, Method::Alg1);
        assert_eq!(s.guarantee, Guarantee::SqrtSumP);
        assert!(s.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn r2_dispatches_to_exact_dp_within_budget_and_fptas_past_it() {
        let inst = Instance::unrelated(
            vec![
                vec![3, 5, 2, 4, 6, 3, 2, 5, 4, 3, 6, 2],
                vec![4, 2, 6, 3, 2, 5, 4, 3, 2, 6, 3, 4],
            ],
            Graph::path(12),
        )
        .unwrap();
        let s = solver().solve(&inst).unwrap();
        assert_eq!(s.method, Method::ExactR2);
        assert_eq!(s.guarantee, Guarantee::Optimal);

        let tight = SolverConfig::new()
            .exact_budget(1)
            .auto_exact_jobs(0)
            .build()
            .unwrap();
        let s2 = tight.solve(&inst).unwrap();
        assert_eq!(s2.method, Method::R2Fptas);
        assert_eq!(s2.guarantee, Guarantee::OnePlusEps(DEFAULT_EPS));
        assert!(s2.makespan >= s.makespan);
    }

    #[test]
    fn r3_dispatches_to_greedy() {
        let times: Vec<Vec<u64>> = (0..3)
            .map(|i| (0..12).map(|j| 1 + (i * 7 + j * 3) % 9).collect())
            .collect();
        let inst = Instance::unrelated(times, Graph::path(12)).unwrap();
        let s = solver().solve(&inst).unwrap();
        assert_eq!(s.method, Method::GreedyR);
        assert_eq!(s.guarantee, Guarantee::Heuristic);
        assert!(s.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn p3_best_of_reports_the_actual_winner() {
        let inst = Instance::identical(
            3,
            vec![4, 3, 3, 2, 2, 4, 3, 2, 4, 3, 2, 2],
            Graph::complete_bipartite(5, 7),
        )
        .unwrap();
        let s = solver().solve(&inst).unwrap();
        assert!(s.schedule.validate(&inst).is_ok());
        // Both engines were attempted and the reported method is the one
        // whose makespan equals the returned one.
        let winner = s
            .attempts
            .iter()
            .find(|a| a.method == s.method)
            .expect("winner recorded");
        assert_eq!(winner.makespan(), Some(&s.makespan));
        for a in &s.attempts {
            if let Some(mk) = a.makespan() {
                assert!(*mk >= s.makespan, "{} beat the reported winner", a.method);
            }
        }
        // BJW ran, so the ratio-2 bound applies to the best schedule
        // whichever engine produced it.
        assert!(s
            .attempts
            .iter()
            .any(|a| a.method == Method::Bjw && a.makespan().is_some()));
        assert_eq!(s.guarantee, Guarantee::Ratio(Rat::integer(2)));
        let opt = bisched_exact::brute_force(&inst).unwrap();
        assert!(s.makespan.ratio_to(&opt.makespan) <= 2.0 + 1e-9);
    }

    #[test]
    fn small_instances_get_proven_optima() {
        let inst =
            Instance::identical(3, vec![4, 3, 3, 2, 2], Graph::complete_bipartite(2, 3)).unwrap();
        let s = solver().solve(&inst).unwrap();
        assert_eq!(s.method, Method::BranchAndBound);
        assert_eq!(s.guarantee, Guarantee::Optimal);
        let opt = bisched_exact::brute_force(&inst).unwrap();
        assert_eq!(s.makespan, opt.makespan);
    }

    #[test]
    fn forced_methods_solve_or_type_their_refusal() {
        let q3 = Instance::uniform(vec![3, 2, 1], vec![1; 6], Graph::path(6)).unwrap();
        let forced = SolverConfig::new().method(Method::R2Fptas).build().unwrap();
        match forced.solve(&q3).unwrap_err() {
            SolveError::NotApplicable { method, .. } => assert_eq!(method, Method::R2Fptas),
            other => panic!("expected NotApplicable, got {other:?}"),
        }
        let alg2 = SolverConfig::new().method(Method::Alg2).build().unwrap();
        let s = alg2.solve(&q3).unwrap();
        assert_eq!(s.method, Method::Alg2);
        let nonunit = Instance::uniform(vec![3, 2, 1], vec![2; 6], Graph::path(6)).unwrap();
        assert!(matches!(
            alg2.solve(&nonunit).unwrap_err(),
            SolveError::NotApplicable {
                method: Method::Alg2,
                ..
            }
        ));
    }

    #[test]
    fn portfolio_never_loses_to_a_member() {
        let inst =
            Instance::uniform(vec![4, 2, 1], vec![5, 4, 4, 3, 2, 2, 1], Graph::path(7)).unwrap();
        let members = vec![Method::GreedyLpt, Method::Alg1, Method::BranchAndBound];
        let portfolio = SolverConfig::new()
            .portfolio(members.clone())
            .build()
            .unwrap();
        let s = portfolio.solve(&inst).unwrap();
        assert_eq!(s.attempts.len(), members.len());
        for (run, m) in s.attempts.iter().zip(&members) {
            assert_eq!(run.method, *m);
            if let Some(mk) = run.makespan() {
                assert!(s.makespan <= *mk);
            }
        }
        // Branch and bound completed, so the portfolio's best is optimal.
        assert_eq!(s.guarantee, Guarantee::Optimal);
    }

    #[test]
    fn race_reports_race_time_and_per_member_wall_times() {
        let inst = Instance::uniform(vec![2, 1], vec![5, 4, 3, 2, 2, 1], Graph::path(6)).unwrap();
        let s = SolverConfig::new()
            .portfolio(vec![Method::GreedyLpt, Method::GreedyR])
            .build()
            .unwrap()
            .solve(&inst)
            .unwrap();
        let race = s.race_time.expect("portfolio reports its race time");
        assert!(race <= s.total_time);
        for run in &s.attempts {
            // Each member is timed from its own start, never cumulatively,
            // so no attempt can outlast the race window it ran inside.
            assert!(run.wall_time <= race);
            assert!(!run.cancelled, "no member proves optimality here");
        }
        // Non-portfolio solves have no race.
        let auto = solver().solve(&inst).unwrap();
        assert!(auto.race_time.is_none());
    }

    #[test]
    fn race_never_loses_to_sequential_best_of_on_a_seeded_matrix() {
        use bisched_model::{JobSizes, SpeedProfile, UnrelatedFamily};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let members = vec![
            Method::GreedyLpt,
            Method::Alg1,
            Method::BranchAndBound,
            Method::Cp,
        ];
        let mut rng = StdRng::seed_from_u64(0xD1CE);
        for k in 0..12u64 {
            let n = 6 + (k as usize % 4);
            let g = bisched_graph::gilbert_bipartite(n / 2, n - n / 2, 0.5, &mut rng);
            let inst = match k % 3 {
                0 => Instance::identical(
                    2 + (k as usize % 2),
                    JobSizes::Uniform { lo: 1, hi: 12 }.sample(n, &mut rng),
                    g,
                ),
                1 => Instance::uniform(
                    SpeedProfile::Geometric { ratio: 2 }.speeds(3),
                    JobSizes::Uniform { lo: 1, hi: 12 }.sample(n, &mut rng),
                    g,
                ),
                _ => {
                    let m = 2 + rng.gen_range(0..2usize);
                    Instance::unrelated(
                        UnrelatedFamily::Uncorrelated { lo: 1, hi: 15 }.sample(m, n, &mut rng),
                        g,
                    )
                }
            }
            .unwrap();

            // Sequential best-of: every member forced on its own.
            let mut seq_best: Option<Rat> = None;
            let mut seq_optimal = false;
            for &m in &members {
                let forced = SolverConfig::new().method(m).build().unwrap();
                if let Ok(r) = forced.solve(&inst) {
                    if seq_best.is_none_or(|b| r.makespan < b) {
                        seq_best = Some(r.makespan);
                    }
                    seq_optimal |= r.guarantee == Guarantee::Optimal;
                }
            }
            let seq_best = seq_best.expect("some member solves every instance");

            let race = SolverConfig::new()
                .portfolio(members.clone())
                .build()
                .unwrap()
                .solve(&inst)
                .unwrap();
            assert!(race.schedule.validate(&inst).is_ok());
            assert!(
                race.makespan <= seq_best,
                "instance {k}: race got {} but sequential best-of got {}",
                race.makespan,
                seq_best
            );
            if seq_optimal {
                assert_eq!(
                    race.guarantee,
                    Guarantee::Optimal,
                    "instance {k}: the race lost a proof sequential best-of had"
                );
            }
            assert_eq!(race.attempts.len(), members.len());
            for (run, m) in race.attempts.iter().zip(&members) {
                assert_eq!(run.method, *m);
            }
        }
    }

    #[test]
    fn race_cancels_the_slow_engine_after_a_proof() {
        // Σp is small enough for the exact Q2 DP but the job count is far
        // past what branch and bound can finish: the DP's proof must
        // cancel the search instead of waiting out its node budget.
        let p: Vec<u64> = (0..30).map(|j| 1 + j % 4).collect();
        let inst = Instance::uniform(vec![2, 1], p, Graph::path(30)).unwrap();
        let s = SolverConfig::new()
            .portfolio(vec![Method::ExactQ2, Method::BranchAndBound])
            .build()
            .unwrap()
            .solve(&inst)
            .unwrap();
        assert_eq!(s.method, Method::ExactQ2);
        assert_eq!(s.guarantee, Guarantee::Optimal);
        let bnb = s
            .attempts
            .iter()
            .find(|a| a.method == Method::BranchAndBound)
            .unwrap();
        assert!(bnb.cancelled, "the race must cancel the unfinished search");
        if matches!(bnb.outcome, EngineOutcome::Failed { .. }) {
            // Cancelled before it even started: zero-time attribution.
            assert_eq!(bnb.wall_time, Duration::ZERO);
        }
    }

    #[test]
    fn forced_engines_report_nonempty_stats() {
        let inst =
            Instance::identical(3, vec![4, 3, 3, 2, 2], Graph::complete_bipartite(2, 3)).unwrap();
        for m in [Method::BranchAndBound, Method::Cp] {
            let s = SolverConfig::new()
                .method(m)
                .build()
                .unwrap()
                .solve(&inst)
                .unwrap();
            let run = s.attempts.iter().find(|a| a.method == m).unwrap();
            assert!(!run.stats.is_empty(), "{m} must report counters");
            assert!(run.stats.get("nodes").unwrap() > 0, "{m} expanded nodes");
            assert_eq!(run.stats.get("complete"), Some(1), "{m} completed");
        }
        let r2 = Instance::unrelated(
            vec![vec![3, 9, 4, 8], vec![8, 2, 7, 3]],
            Graph::from_edges(4, &[(0, 1), (2, 3)]),
        )
        .unwrap();
        let s = SolverConfig::new()
            .method(Method::R2Fptas)
            .build()
            .unwrap()
            .solve(&r2)
            .unwrap();
        let run = s
            .attempts
            .iter()
            .find(|a| a.method == Method::R2Fptas)
            .unwrap();
        assert!(!run.stats.is_empty());
        assert!(run.stats.get("expanded").unwrap() > 0);
        assert!(run.stats.get("peak_states").unwrap() > 0);
        // Engines with no instrumentation report empty stats, not junk.
        let greedy = SolverConfig::new()
            .method(Method::GreedyLpt)
            .build()
            .unwrap()
            .solve(&inst)
            .unwrap();
        assert!(greedy.attempts[0].stats.is_empty());
    }

    #[test]
    fn portfolio_trace_carries_race_cancel_events() {
        // Same shape as `race_cancels_the_slow_engine_after_a_proof`: the
        // exact DP's proof cancels branch and bound — with the flight
        // recorder on, that cancellation must be visible in the trace.
        let p: Vec<u64> = (0..30).map(|j| 1 + j % 4).collect();
        let inst = Instance::uniform(vec![2, 1], p, Graph::path(30)).unwrap();
        bisched_obs::start_recording(1 << 16);
        let s = SolverConfig::new()
            .portfolio(vec![Method::ExactQ2, Method::BranchAndBound])
            .build()
            .unwrap()
            .solve(&inst)
            .unwrap();
        let trace = bisched_obs::stop_recording();
        assert_eq!(s.guarantee, Guarantee::Optimal);
        let names: Vec<&str> = trace.events.iter().map(|e| e.name).collect();
        assert!(names.contains(&"portfolio_race"), "race span missing");
        assert!(names.contains(&"race_publish"), "publish instant missing");
        assert!(names.contains(&"race_cancel"), "cancel instant missing");
        // The member spans are labelled by engine name.
        assert!(names.contains(&"exact-q2"));
        let json = trace.to_chrome_json();
        assert!(json.contains("\"race_cancel\""));
    }

    #[test]
    fn batch_solves_in_order() {
        let a = Instance::identical(2, vec![1, 2], Graph::empty(2)).unwrap();
        let b = Instance::identical(1, vec![1, 1], Graph::from_edges(2, &[(0, 1)])).unwrap();
        let c = Instance::unrelated(vec![vec![1, 2], vec![2, 1]], Graph::path(2)).unwrap();
        let reports = solver().solve_batch(&[a, b, c]);
        assert_eq!(reports.len(), 3);
        assert!(reports[0].is_ok());
        assert_eq!(reports[1].as_ref().unwrap_err(), &SolveError::Infeasible);
        assert_eq!(reports[2].as_ref().unwrap().guarantee, Guarantee::Optimal);
    }

    #[test]
    fn errors_bubble_up() {
        let odd = Instance::identical(3, vec![1; 5], Graph::cycle(5)).unwrap();
        assert_eq!(solver().solve(&odd).unwrap_err(), SolveError::NotBipartite);
        let infeasible =
            Instance::identical(1, vec![1, 1], Graph::from_edges(2, &[(0, 1)])).unwrap();
        assert_eq!(
            solver().solve(&infeasible).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(matches!(
            SolverConfig::new().eps(0.0).build(),
            Err(SolveError::InvalidConfig(_))
        ));
        assert!(matches!(
            SolverConfig::new().eps(1.5).build(),
            Err(SolveError::InvalidConfig(_))
        ));
        assert!(matches!(
            SolverConfig::new().portfolio(vec![]).build(),
            Err(SolveError::InvalidConfig(_))
        ));
    }

    #[test]
    fn parallel_batch_matches_sequential_on_64_instances() {
        use bisched_model::{JobSizes, SpeedProfile, UnrelatedFamily};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let mut rng = StdRng::seed_from_u64(0xBA7C4);
        let mut instances = Vec::new();
        for k in 0..64u64 {
            let n = 6 + (k as usize % 7);
            let g = bisched_graph::gilbert_bipartite(n / 2, n - n / 2, 0.4, &mut rng);
            let inst = match k % 3 {
                0 => Instance::identical(
                    2 + (k as usize % 3),
                    JobSizes::Uniform { lo: 1, hi: 20 }.sample(n, &mut rng),
                    g,
                ),
                1 => Instance::uniform(
                    SpeedProfile::Geometric { ratio: 2 }.speeds(2 + (k as usize % 3)),
                    JobSizes::Uniform { lo: 1, hi: 20 }.sample(n, &mut rng),
                    g,
                ),
                _ => {
                    let m = 2 + rng.gen_range(0..2usize);
                    Instance::unrelated(
                        UnrelatedFamily::Uncorrelated { lo: 1, hi: 30 }.sample(m, n, &mut rng),
                        g,
                    )
                }
            }
            .unwrap();
            instances.push(inst);
        }
        let s = solver();
        let batch = s.solve_batch(&instances);
        let sequential: Vec<_> = instances.iter().map(|inst| s.solve(inst)).collect();
        assert_eq!(batch.len(), sequential.len());
        for (b, q) in batch.iter().zip(&sequential) {
            match (b, q) {
                (Ok(br), Ok(qr)) => {
                    assert_eq!(br.makespan, qr.makespan);
                    assert_eq!(br.method, qr.method);
                    assert_eq!(br.guarantee, qr.guarantee);
                    assert_eq!(br.schedule.assignment(), qr.schedule.assignment());
                }
                (Err(be), Err(qe)) => assert_eq!(be, qe),
                other => panic!("batch/sequential disagree: {other:?}"),
            }
        }
    }
}
