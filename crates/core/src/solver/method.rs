//! The engine catalogue: every solving routine in the workspace,
//! addressable through one enum.

/// A concrete solving engine the [`Solver`](crate::Solver) can run.
///
/// Every engine of the workspace is addressable here — including the exact
/// oracles (`ExactQ2`, `ExactR2`, `BranchAndBound`) that the old free
/// function never reached. Applicability is environment-dependent; forcing
/// an inapplicable method yields
/// [`SolveError::NotApplicable`](crate::SolveError::NotApplicable).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// Pseudo-polynomial component subset-sum DP for `Q2`/`P2`
    /// (the Theorem 4 regime generalized to arbitrary `p_j`).
    ExactQ2,
    /// Pseudo-polynomial load DP for `R2` (exact; the paper's ground
    /// truth for Algorithms 4 and 5).
    ExactR2,
    /// Exact branch and bound with a node budget (any environment; the
    /// result is proven optimal only when the search completes).
    BranchAndBound,
    /// Constraint-propagation + branching solver (any environment with
    /// `m ≤ 64`): bitmask domains, load/horizon and conflict-graph
    /// propagation, activity-based restarts, binary search on the
    /// makespan. Proven optimal when its search completes; built for
    /// dense incompatibility graphs where plain branch and bound
    /// thrashes.
    Cp,
    /// Algorithm 1: the `√(Σ p_j)`-approximation for `Q | G = bipartite`
    /// (Theorem 9; also accepts `P`).
    Alg1,
    /// Algorithm 2: the coloring/capacity scheme for unit jobs
    /// (Theorem 19; a.a.s. 2-approximate on `G_{n,n,p(n)}`).
    Alg2,
    /// Bodlaender–Jansen–Woeginger 2-approximation for `P`, `m ≥ 3`
    /// (ratio 2 is best possible on identical machines, [3]).
    Bjw,
    /// Algorithm 5: the `R2` FPTAS (Theorem 22); accuracy comes from
    /// [`SolverConfig::eps`](crate::SolverConfig::eps).
    R2Fptas,
    /// Algorithm 4: the `O(n)` 2-approximation for `R2` (Theorem 21).
    R2TwoApprox,
    /// Graph-aware LPT list scheduling with 2-coloring fallback
    /// (any environment; no guarantee).
    GreedyLpt,
    /// The branch-and-bound incumbent greedy (any environment; the only
    /// option with a defensible story for `R`, `m ≥ 3`, where Theorem 24
    /// rules out any polynomial approximation ratio).
    GreedyR,
}

impl Method {
    /// Every engine, in the order portfolios and docs list them.
    pub const ALL: [Method; 11] = [
        Method::ExactQ2,
        Method::ExactR2,
        Method::BranchAndBound,
        Method::Cp,
        Method::Alg1,
        Method::Alg2,
        Method::Bjw,
        Method::R2Fptas,
        Method::R2TwoApprox,
        Method::GreedyLpt,
        Method::GreedyR,
    ];

    /// Stable machine-readable name (used by the CLI and JSON reports).
    pub fn name(&self) -> &'static str {
        match self {
            Method::ExactQ2 => "exact-q2",
            Method::ExactR2 => "exact-r2",
            Method::BranchAndBound => "branch-and-bound",
            Method::Cp => "cp",
            Method::Alg1 => "alg1",
            Method::Alg2 => "alg2",
            Method::Bjw => "bjw",
            Method::R2Fptas => "fptas",
            Method::R2TwoApprox => "twoapprox",
            Method::GreedyLpt => "greedy-lpt",
            Method::GreedyR => "greedy",
        }
    }

    /// Paper provenance of the engine, for reports and docs.
    pub fn citation(&self) -> &'static str {
        match self {
            Method::ExactQ2 => "Theorem 4 regime (pseudo-polynomial Q2/P2 DP)",
            Method::ExactR2 => "Section 3.2 ground-truth R2 DP",
            Method::BranchAndBound => "exact search (workspace oracle, not from the paper)",
            Method::Cp => "constraint propagation (workspace engine, not from the paper)",
            Method::Alg1 => "Algorithm 1, Theorem 9",
            Method::Alg2 => "Algorithm 2, Theorem 19",
            Method::Bjw => "Bodlaender–Jansen–Woeginger [3]",
            Method::R2Fptas => "Algorithm 5, Theorem 22",
            Method::R2TwoApprox => "Algorithm 4, Theorem 21",
            Method::GreedyLpt => "graph-aware LPT baseline",
            Method::GreedyR => "greedy incumbent (Theorem 24 forbids any ratio for R, m ≥ 3)",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Method {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Method::ALL
            .iter()
            .copied()
            .find(|m| m.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Method::ALL.iter().map(|m| m.name()).collect();
                format!(
                    "unknown method `{s}` (expected one of: {})",
                    names.join(", ")
                )
            })
    }
}

/// How the [`Solver`](crate::Solver) chooses among engines.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum MethodPolicy {
    /// The paper's dispatch table: the strongest-guarantee engine that
    /// fits the instance and the configured budgets (see the
    /// [`solver`](crate::solver) module docs for the exact table).
    #[default]
    Auto,
    /// Run exactly this engine, or fail with a typed
    /// [`SolveError::NotApplicable`](crate::SolveError::NotApplicable).
    Force(Method),
    /// Race every listed engine that applies concurrently and keep the
    /// best schedule; the report carries one [`EngineRun`](crate::EngineRun)
    /// per member, in list order. The budgeted engines share a
    /// cancellation flag and an incumbent bound (the first proven-optimal
    /// answer cancels the rest, marked `cancelled` in their runs), and
    /// [`SolverConfig::race_deadline`](crate::SolverConfig::race_deadline)
    /// bounds the whole race. The returned makespan is never worse than
    /// sequentially running every member and keeping the best.
    Portfolio(Vec<Method>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_fromstr() {
        for m in Method::ALL {
            assert_eq!(m.name().parse::<Method>().unwrap(), m);
        }
        assert!("no-such-engine".parse::<Method>().is_err());
    }
}
