//! Typed solution-quality guarantees with paper-theorem provenance.

use bisched_model::{Instance, Rat};

/// What a [`SolveReport`](crate::SolveReport)'s schedule can promise,
/// replacing the old free-text `&'static str` guarantee.
///
/// Mapping to the paper:
///
/// | variant | provenance |
/// |---|---|
/// | [`Optimal`](Guarantee::Optimal) | exact oracles; Theorem 4 covers the polynomial `Q2, p_j = 1` regime of the `Q2` DP |
/// | [`Ratio(r)`](Guarantee::Ratio) | `2` from BJW [3] on `P, m ≥ 3` (best possible) and from Algorithm 4 / Theorem 21 on `R2` |
/// | [`SqrtSumP`](Guarantee::SqrtSumP) | Algorithm 1 / Theorem 9 — `√(Σ p_j) · C*`, matching the `Ω(n^{1/2−ε})` wall of Theorem 8 |
/// | [`OnePlusEps(ε)`](Guarantee::OnePlusEps) | Algorithm 5 / Theorem 22 — the `R2` FPTAS |
/// | [`Heuristic`](Guarantee::Heuristic) | no worst-case promise; for `R, m ≥ 3` Theorem 24 proves none is possible in polynomial time |
#[derive(Clone, Debug, PartialEq)]
pub enum Guarantee {
    /// The schedule is provably optimal.
    Optimal,
    /// Makespan is at most `r · C*` for the constant factor `r`.
    Ratio(Rat),
    /// Makespan is at most `√(Σ p_j) · C*` (Theorem 9; the bound is
    /// instance-dependent).
    SqrtSumP,
    /// Makespan is at most `(1 + ε) · C*` (Theorem 22 FPTAS).
    OnePlusEps(f64),
    /// No worst-case guarantee (for `R`, `m ≥ 3` Theorem 24 shows none
    /// can exist unless P = NP).
    Heuristic,
}

impl Guarantee {
    /// The multiplicative bound `makespan ≤ bound · C*` this guarantee
    /// promises on `inst`, or `None` for [`Guarantee::Heuristic`].
    ///
    /// `SqrtSumP` is instance-dependent, hence the `inst` parameter.
    pub fn ratio_bound(&self, inst: &Instance) -> Option<f64> {
        match self {
            Guarantee::Optimal => Some(1.0),
            Guarantee::Ratio(r) => Some(r.to_f64()),
            Guarantee::SqrtSumP => Some((inst.total_processing() as f64).sqrt()),
            Guarantee::OnePlusEps(eps) => Some(1.0 + eps),
            Guarantee::Heuristic => None,
        }
    }

    /// The paper theorem (or prior-art citation) backing this guarantee.
    pub fn provenance(&self) -> &'static str {
        match self {
            Guarantee::Optimal => "exact oracle (Theorem 4 regime / complete search)",
            Guarantee::Ratio(_) => "BJW [3] on P (m >= 3); Theorem 21 on R2",
            Guarantee::SqrtSumP => "Theorem 9 (Algorithm 1)",
            Guarantee::OnePlusEps(_) => "Theorem 22 (Algorithm 5 FPTAS)",
            Guarantee::Heuristic => "none (Theorem 24: no ratio possible for R, m >= 3)",
        }
    }

    /// Whether this guarantee is at least as strong as `other` on `inst`
    /// (smaller proven ratio bound wins; any bound beats none).
    pub fn at_least_as_strong(&self, other: &Guarantee, inst: &Instance) -> bool {
        match (self.ratio_bound(inst), other.ratio_bound(inst)) {
            (Some(a), Some(b)) => a <= b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => true,
        }
    }
}

impl std::fmt::Display for Guarantee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Guarantee::Optimal => write!(f, "optimal"),
            Guarantee::Ratio(r) => write!(f, "{r} * OPT"),
            Guarantee::SqrtSumP => write!(f, "sqrt(sum p_j) * OPT"),
            Guarantee::OnePlusEps(eps) => write!(f, "(1+{eps}) * OPT"),
            Guarantee::Heuristic => write!(f, "heuristic (no guarantee)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bisched_graph::Graph;

    fn inst() -> Instance {
        // Σ p_j = 16 → SqrtSumP bound 4.
        Instance::identical(2, vec![4; 4], Graph::empty(4)).unwrap()
    }

    #[test]
    fn bounds_order_as_expected() {
        let i = inst();
        let opt = Guarantee::Optimal;
        let fptas = Guarantee::OnePlusEps(0.125);
        let two = Guarantee::Ratio(Rat::integer(2));
        let sqrt = Guarantee::SqrtSumP;
        let heur = Guarantee::Heuristic;
        assert!(opt.at_least_as_strong(&fptas, &i));
        assert!(fptas.at_least_as_strong(&two, &i));
        assert!(two.at_least_as_strong(&sqrt, &i));
        assert!(sqrt.at_least_as_strong(&heur, &i));
        assert!(!heur.at_least_as_strong(&sqrt, &i));
        assert_eq!(sqrt.ratio_bound(&i), Some(4.0));
    }
}
