//! Builder-style configuration for the [`Solver`](crate::Solver).

use super::method::{Method, MethodPolicy};
use super::SolveError;
use crate::Solver;
use std::time::Duration;

/// Default FPTAS accuracy (`ε`), matching the old façade's hardcoded
/// `DEFAULT_EPS`.
pub const DEFAULT_EPS: f64 = 0.125;

/// Default pseudo-polynomial budget: the exact `Q2`/`R2` DPs are preferred
/// by [`MethodPolicy::Auto`] while the relevant processing mass stays at
/// or below this.
pub const DEFAULT_EXACT_BUDGET: u64 = 1 << 22;

/// Default branch-and-bound node budget.
pub const DEFAULT_BNB_NODE_LIMIT: u64 = 2_000_000;

/// Default CP decision-node budget. CP nodes are costlier than B&B nodes
/// (each carries a propagation fixpoint), so the default is smaller.
pub const DEFAULT_CP_NODE_LIMIT: u64 = 500_000;

/// Default job-count ceiling under which `Auto` tries branch and bound
/// before the approximation engines.
pub const DEFAULT_AUTO_EXACT_JOBS: usize = 10;

/// Everything a [`Solver`] can be tuned with; construct via
/// [`SolverConfig::new`], chain setters, finish with
/// [`SolverConfig::build`]. Fields are public for inspection.
///
/// ```
/// use bisched_core::{Method, MethodPolicy, SolverConfig};
///
/// let solver = SolverConfig::new()
///     .eps(0.05)
///     .exact_budget(1 << 18)
///     .policy(MethodPolicy::Portfolio(vec![Method::Alg1, Method::GreedyLpt]))
///     .build()
///     .unwrap();
/// assert_eq!(solver.config().eps, 0.05);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SolverConfig {
    /// FPTAS accuracy `ε ∈ (0, 1]` used by [`Method::R2Fptas`].
    pub eps: f64,
    /// Pseudo-polynomial budget gating the exact `Q2`/`R2` DPs in `Auto`.
    pub exact_budget: u64,
    /// Node budget for [`Method::BranchAndBound`].
    pub bnb_node_limit: u64,
    /// Optional wall-clock budget for [`Method::BranchAndBound`],
    /// alongside the node budget (whichever is hit first truncates the
    /// search). `None` (the default) bounds the search by nodes only,
    /// keeping results hardware-independent.
    pub bnb_deadline: Option<Duration>,
    /// Decision-node budget for [`Method::Cp`] (shared across its binary
    /// search probes and restarts).
    pub cp_node_limit: u64,
    /// Optional wall-clock budget for a whole [`MethodPolicy::Portfolio`]
    /// race: it is folded into every budgeted member's own deadline
    /// (minimum wins), so no engine outlives the race window. `None`
    /// (the default) leaves members on their individual budgets.
    pub race_deadline: Option<Duration>,
    /// Job-count ceiling under which `Auto` tries branch and bound first.
    pub auto_exact_jobs: usize,
    /// Optional cap on the FPTAS DP's live width (states per layer),
    /// bounding the sweep's memory under [`Method::R2Fptas`]. When a
    /// layer outgrows it, `ε` is coarsened gracefully (doubling, capped
    /// at Algorithm 5's `ε = 1` regime ceiling) and the report's
    /// [`Guarantee::OnePlusEps`](super::Guarantee) carries the effective
    /// `ε`; if even the coarsest regime cannot fit, the engine fails with
    /// a typed state-cap error recorded in the solve attempts. `None`
    /// (the default) leaves the width unbounded.
    pub fptas_state_cap: Option<usize>,
    /// Expand FPTAS DP layers in parallel chunks over rayon with a
    /// deterministic merge. Result-identical to the sequential sweep
    /// (and sequential in effect under the vendored rayon stand-in), so
    /// it does not participate in the service's cache key.
    pub fptas_parallel: bool,
    /// Deterministic seed for randomized engines, echoed in
    /// [`SolveReport::seed`](crate::SolveReport::seed). The paper's
    /// engines draw no randomness at solve time (Algorithm 2's
    /// probability lives in the instance model), so today it only tags
    /// reports for reproducibility.
    pub seed: u64,
    /// How engines are chosen; see [`MethodPolicy`].
    pub policy: MethodPolicy,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            eps: DEFAULT_EPS,
            exact_budget: DEFAULT_EXACT_BUDGET,
            bnb_node_limit: DEFAULT_BNB_NODE_LIMIT,
            bnb_deadline: None,
            cp_node_limit: DEFAULT_CP_NODE_LIMIT,
            race_deadline: None,
            fptas_state_cap: None,
            fptas_parallel: false,
            auto_exact_jobs: DEFAULT_AUTO_EXACT_JOBS,
            seed: 0,
            policy: MethodPolicy::Auto,
        }
    }
}

impl SolverConfig {
    /// Starts from the defaults (the old façade's behaviour).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the FPTAS accuracy `ε ∈ (0, 1]` (Theorem 22's regime;
    /// validated by [`build`](Self::build)).
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Sets the pseudo-polynomial budget: `Auto` picks the exact
    /// `Q2`/`R2` DP when the instance's processing mass is at most this.
    pub fn exact_budget(mut self, budget: u64) -> Self {
        self.exact_budget = budget;
        self
    }

    /// Sets the node budget for [`Method::BranchAndBound`]; past it, the
    /// search returns its incumbent as a heuristic instead of an optimum.
    pub fn bnb_node_limit(mut self, nodes: u64) -> Self {
        self.bnb_node_limit = nodes;
        self
    }

    /// Sets (or clears) the branch-and-bound wall-clock budget. The
    /// search stops at whichever of the node and deadline budgets is hit
    /// first and returns its incumbent with `Heuristic` provenance.
    pub fn bnb_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.bnb_deadline = deadline;
        self
    }

    /// Sets the decision-node budget for [`Method::Cp`]; past it, the
    /// solver returns its best incumbent as a heuristic.
    pub fn cp_node_limit(mut self, nodes: u64) -> Self {
        self.cp_node_limit = nodes;
        self
    }

    /// Sets (or clears) the whole-race wall-clock budget for
    /// [`MethodPolicy::Portfolio`]; see
    /// [`SolverConfig::race_deadline`].
    pub fn race_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.race_deadline = deadline;
        self
    }

    /// Sets (or clears) the FPTAS DP state cap; see
    /// [`SolverConfig::fptas_state_cap`].
    pub fn fptas_state_cap(mut self, cap: Option<usize>) -> Self {
        self.fptas_state_cap = cap;
        self
    }

    /// Toggles parallel (deterministically merged) FPTAS layer expansion.
    pub fn fptas_parallel(mut self, parallel: bool) -> Self {
        self.fptas_parallel = parallel;
        self
    }

    /// Sets the job-count ceiling under which `Auto` attempts a complete
    /// branch and bound before the approximation engines.
    pub fn auto_exact_jobs(mut self, jobs: usize) -> Self {
        self.auto_exact_jobs = jobs;
        self
    }

    /// Sets the deterministic seed threaded to randomized engines.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the method policy; see [`MethodPolicy`].
    pub fn policy(mut self, policy: MethodPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Shorthand for `policy(MethodPolicy::Force(method))`.
    pub fn method(self, method: Method) -> Self {
        self.policy(MethodPolicy::Force(method))
    }

    /// Shorthand for `policy(MethodPolicy::Portfolio(methods))`.
    pub fn portfolio(self, methods: Vec<Method>) -> Self {
        self.policy(MethodPolicy::Portfolio(methods))
    }

    /// Validates the configuration and produces the [`Solver`].
    pub fn build(self) -> Result<Solver, SolveError> {
        if !(self.eps > 0.0 && self.eps <= 1.0) {
            return Err(SolveError::InvalidConfig(format!(
                "eps must be in (0, 1], got {}",
                self.eps
            )));
        }
        if self.fptas_state_cap == Some(0) {
            return Err(SolveError::InvalidConfig(
                "fptas_state_cap must be at least 1 (use None for unbounded)".into(),
            ));
        }
        if let MethodPolicy::Portfolio(methods) = &self.policy {
            if methods.is_empty() {
                return Err(SolveError::InvalidConfig(
                    "portfolio must list at least one method".into(),
                ));
            }
        }
        Ok(Solver::from_config(self))
    }
}
