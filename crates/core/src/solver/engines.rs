//! Uniform adapters from the workspace's heterogeneous engine APIs to the
//! [`Method`] catalogue.

use bisched_baselines::bjw_two_approx;
use bisched_cp::{cp_solve_ctl, CpLimits};
use bisched_exact::{
    branch_and_bound_ctl, greedy_incumbent, q2_bipartite_exact, r2_bipartite_exact, BnbLimits,
    SearchCtl,
};
use bisched_model::{Instance, MachineEnvironment, Rat, Schedule};
use std::time::Duration;

use super::config::SolverConfig;
use super::guarantee::Guarantee;
use super::method::Method;
use super::report::EngineStats;
use crate::alg1_sqrt::alg1_sqrt_approx;
use crate::alg2_random::alg2_random_graph;
use crate::r2_approx::r2_two_approx;
use crate::r2_fptas::{r2_fptas_with, FptasControls};

/// A successful engine run, before report assembly.
pub(super) struct EngineSolution {
    pub schedule: Schedule,
    pub makespan: Rat,
    pub guarantee: Guarantee,
    /// A race cancellation truncated this engine mid-run (the schedule
    /// is its incumbent so far).
    pub cancelled: bool,
    /// A completed CP run's certificate: no schedule with makespan
    /// strictly below this exists. May certify a *racing* engine's
    /// schedule even when this engine's own `guarantee` is weaker.
    pub proven_lower: Option<Rat>,
    /// The engine's runtime counters (empty for engines that report
    /// none); copied verbatim into the attempt's
    /// [`EngineRun::stats`](super::EngineRun::stats).
    pub stats: EngineStats,
}

/// Why an engine produced no schedule.
pub(super) enum EngineFailure {
    /// Preconditions not met; carries the reason.
    NotApplicable(String),
    /// Applied but did not finish with a schedule.
    Failed(String),
}

use EngineFailure::{Failed, NotApplicable};

fn solved(inst: &Instance, schedule: Schedule, guarantee: Guarantee) -> EngineSolution {
    let makespan = schedule.makespan(inst);
    EngineSolution {
        schedule,
        makespan,
        guarantee,
        cancelled: false,
        proven_lower: None,
        stats: EngineStats::new(),
    }
}

/// The smaller of an engine's own deadline and the race's remaining
/// window (either may be absent).
fn min_deadline(own: Option<Duration>, cap: Option<Duration>) -> Option<Duration> {
    match (own, cap) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

fn is_unrelated(inst: &Instance) -> bool {
    matches!(inst.env(), MachineEnvironment::Unrelated { .. })
}

fn require_two_machines(inst: &Instance) -> Result<(), EngineFailure> {
    if inst.num_machines() != 2 {
        return Err(NotApplicable(format!(
            "requires exactly 2 machines, instance has {}",
            inst.num_machines()
        )));
    }
    Ok(())
}

/// Runs one engine on an instance the caller has already screened for the
/// global preconditions (bipartite graph, chromatic feasibility).
pub(super) fn run_method(
    config: &SolverConfig,
    inst: &Instance,
    method: Method,
) -> Result<EngineSolution, EngineFailure> {
    run_method_ctl(config, inst, method, None, None)
}

/// Race-aware engine adapter: the budgeted engines (`BranchAndBound`,
/// `Cp`) poll `ctl` for cancellation, prune against its published
/// cross-engine bound, publish their own incumbents, and cap their
/// deadline at `deadline_cap` (the race's remaining window).
pub(super) fn run_method_ctl(
    config: &SolverConfig,
    inst: &Instance,
    method: Method,
    ctl: Option<&SearchCtl>,
    deadline_cap: Option<Duration>,
) -> Result<EngineSolution, EngineFailure> {
    match method {
        Method::ExactQ2 => {
            if is_unrelated(inst) {
                return Err(NotApplicable("requires P or Q machines, got R".into()));
            }
            require_two_machines(inst)?;
            let opt = q2_bipartite_exact(inst).map_err(|e| Failed(e.to_string()))?;
            Ok(EngineSolution {
                schedule: opt.schedule,
                makespan: opt.makespan,
                guarantee: Guarantee::Optimal,
                cancelled: false,
                proven_lower: None,
                stats: EngineStats::new(),
            })
        }
        Method::ExactR2 => {
            if !is_unrelated(inst) {
                return Err(NotApplicable(format!(
                    "requires R machines, got {}",
                    inst.env().alpha()
                )));
            }
            require_two_machines(inst)?;
            let opt = r2_bipartite_exact(inst).map_err(|e| Failed(e.to_string()))?;
            Ok(EngineSolution {
                schedule: opt.schedule,
                makespan: opt.makespan,
                guarantee: Guarantee::Optimal,
                cancelled: false,
                proven_lower: None,
                stats: EngineStats::new(),
            })
        }
        Method::BranchAndBound => {
            let limits = BnbLimits {
                node_limit: config.bnb_node_limit,
                deadline: min_deadline(config.bnb_deadline, deadline_cap),
            };
            let outcome = branch_and_bound_ctl(inst, &limits, ctl);
            let mut stats = EngineStats::new();
            stats.set("nodes", outcome.nodes);
            stats.set("prunes_incumbent", outcome.prunes_incumbent);
            stats.set("prunes_foreign", outcome.prunes_foreign);
            stats.set("prunes_candidate", outcome.prunes_candidate);
            stats.set("incumbent_updates", outcome.incumbent_updates);
            stats.set("complete", outcome.complete as u64);
            match outcome.optimum {
                Some(opt) => Ok(EngineSolution {
                    schedule: opt.schedule,
                    makespan: opt.makespan,
                    guarantee: if outcome.complete {
                        Guarantee::Optimal
                    } else {
                        Guarantee::Heuristic
                    },
                    cancelled: outcome.cancelled,
                    proven_lower: None,
                    stats,
                }),
                None => Err(Failed(match config.bnb_deadline {
                    Some(d) => format!(
                        "no incumbent within the {}-node / {:?} budget",
                        config.bnb_node_limit, d
                    ),
                    None => format!(
                        "no incumbent within the {}-node budget",
                        config.bnb_node_limit
                    ),
                })),
            }
        }
        Method::Cp => {
            let limits = CpLimits {
                node_limit: config.cp_node_limit,
                deadline: min_deadline(config.bnb_deadline, deadline_cap),
            };
            let outcome = cp_solve_ctl(inst, &limits, ctl).map_err(NotApplicable)?;
            let mut stats = EngineStats::new();
            stats.set("nodes", outcome.nodes);
            stats.set("conflicts", outcome.conflicts);
            stats.set("restarts", outcome.restarts);
            stats.set("propagations", outcome.propagations);
            stats.set("probes_sat", outcome.probes_sat);
            stats.set("probes_unsat", outcome.probes_unsat);
            stats.set("complete", outcome.complete as u64);
            match outcome.best {
                Some(opt) => {
                    // Optimal only when the completed proof reaches this
                    // engine's own schedule; a foreign-bound-closed run
                    // still carries `proven_lower` for the race
                    // aggregator to certify the actual winner with.
                    let own_optimal =
                        outcome.complete && outcome.proven_lower.as_ref() == Some(&opt.makespan);
                    Ok(EngineSolution {
                        schedule: opt.schedule,
                        makespan: opt.makespan,
                        guarantee: if own_optimal {
                            Guarantee::Optimal
                        } else {
                            Guarantee::Heuristic
                        },
                        cancelled: outcome.cancelled,
                        proven_lower: outcome.proven_lower,
                        stats,
                    })
                }
                None if outcome.complete => {
                    Err(Failed("proven infeasible: no schedule exists".into()))
                }
                None => Err(Failed(format!(
                    "no incumbent within the {}-node budget",
                    config.cp_node_limit
                ))),
            }
        }
        Method::Alg1 => {
            if is_unrelated(inst) {
                return Err(NotApplicable("requires P or Q machines, got R".into()));
            }
            let r = alg1_sqrt_approx(inst).map_err(|e| Failed(e.to_string()))?;
            Ok(EngineSolution {
                schedule: r.schedule,
                makespan: r.makespan,
                guarantee: Guarantee::SqrtSumP,
                cancelled: false,
                proven_lower: None,
                stats: EngineStats::new(),
            })
        }
        Method::Alg2 => {
            if is_unrelated(inst) {
                return Err(NotApplicable("requires P or Q machines, got R".into()));
            }
            if !inst.is_unit() {
                return Err(NotApplicable(
                    "Algorithm 2 is stated for unit jobs (p_j = 1)".into(),
                ));
            }
            let r = alg2_random_graph(inst).map_err(|e| Failed(e.to_string()))?;
            // Theorem 19's factor-2 promise is a.a.s. over G_{n,n,p(n)},
            // not worst-case, so the typed guarantee stays Heuristic.
            Ok(EngineSolution {
                schedule: r.schedule,
                makespan: r.makespan,
                guarantee: Guarantee::Heuristic,
                cancelled: false,
                proven_lower: None,
                stats: EngineStats::new(),
            })
        }
        Method::Bjw => {
            if is_unrelated(inst) {
                return Err(NotApplicable("requires P or Q machines, got R".into()));
            }
            if inst.num_machines() < 3 {
                return Err(NotApplicable(format!(
                    "requires m >= 3, instance has {}",
                    inst.num_machines()
                )));
            }
            let schedule = bjw_two_approx(inst).map_err(|e| Failed(e.to_string()))?;
            // The ratio-2 proof is for identical machines; on uniform
            // speeds the engine runs as a comparison heuristic.
            let guarantee = if matches!(inst.env(), MachineEnvironment::Identical { .. }) {
                Guarantee::Ratio(Rat::integer(2))
            } else {
                Guarantee::Heuristic
            };
            Ok(solved(inst, schedule, guarantee))
        }
        Method::R2Fptas => {
            if !is_unrelated(inst) {
                return Err(NotApplicable(format!(
                    "requires R machines, got {}",
                    inst.env().alpha()
                )));
            }
            require_two_machines(inst)?;
            let controls = FptasControls {
                state_cap: config.fptas_state_cap,
                // A hit cap degrades gracefully to a coarser ε (≤ 1, the
                // Algorithm 5 regime); only an unsatisfiable cap fails,
                // typed, into the attempt record.
                coarsen: true,
                parallel: config.fptas_parallel,
            };
            let report =
                r2_fptas_with(inst, config.eps, &controls).map_err(|e| Failed(e.to_string()))?;
            // The guarantee carries the ε the DP actually ran at — equal
            // to the configured ε unless the state cap forced coarsening.
            let guarantee = Guarantee::OnePlusEps(report.eps_effective);
            let mut stats = EngineStats::new();
            stats.set("expanded", report.expanded);
            stats.set("pruned", report.pruned);
            stats.set("peak_states", report.peak_states as u64);
            // ε in parts-per-million: counters are integers, and µ-level
            // resolution is far below anything coarsening produces.
            stats.set("eps_effective_ppm", (report.eps_effective * 1e6) as u64);
            let mut sol = solved(inst, report.schedule, guarantee);
            sol.stats = stats;
            Ok(sol)
        }
        Method::R2TwoApprox => {
            if !is_unrelated(inst) {
                return Err(NotApplicable(format!(
                    "requires R machines, got {}",
                    inst.env().alpha()
                )));
            }
            require_two_machines(inst)?;
            let schedule = r2_two_approx(inst).map_err(|e| Failed(e.to_string()))?;
            Ok(solved(inst, schedule, Guarantee::Ratio(Rat::integer(2))))
        }
        Method::GreedyLpt => {
            let schedule =
                bisched_baselines::greedy_lpt(inst).map_err(|e| Failed(e.to_string()))?;
            Ok(solved(inst, schedule, Guarantee::Heuristic))
        }
        Method::GreedyR => match greedy_incumbent(inst) {
            Some(opt) => Ok(EngineSolution {
                schedule: opt.schedule,
                makespan: opt.makespan,
                guarantee: Guarantee::Heuristic,
                cancelled: false,
                proven_lower: None,
                stats: EngineStats::new(),
            }),
            None => Err(Failed("greedy found no feasible schedule".into())),
        },
    }
}
