//! Undirected simple graph over dense `u32` vertex ids.
//!
//! This is the substrate every scheduling algorithm in the workspace stands
//! on: jobs are vertices, incompatibilities are edges, and "the jobs on one
//! machine form an independent set" is the feasibility constraint of the
//! whole model. Vertex ids are `u32` (not `usize`) to halve the memory
//! traffic of adjacency lists on 64-bit targets.

/// A vertex identifier. Dense in `0..graph.num_vertices()`.
pub type Vertex = u32;

/// An undirected simple graph with sorted adjacency lists.
///
/// Immutable once built (see [`GraphBuilder`]); all queries are borrow-only,
/// so graphs can be shared freely across threads during experiment sweeps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    adj: Vec<Vec<Vertex>>,
    num_edges: usize,
}

impl Graph {
    /// A graph with `n` vertices and no edges (`G = empty` in the paper,
    /// which degenerates the problem to classical `α||C_max`).
    pub fn empty(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list. Self-loops are rejected; duplicate
    /// edges are merged.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// The complete bipartite graph `K_{a,b}`: left part `0..a`, right part
    /// `a..a+b`. `Q|G = complete bipartite|C_max` is a recurring special case
    /// in the related-work line ([20], [24]).
    pub fn complete_bipartite(a: usize, b: usize) -> Self {
        let mut builder = GraphBuilder::new(a + b);
        for u in 0..a {
            for v in a..a + b {
                builder.add_edge(u as Vertex, v as Vertex);
            }
        }
        builder.build()
    }

    /// The crown graph `S_n^0`: `K_{n,n}` minus a perfect matching (left
    /// `i` is compatible with right `n + i` only). The uniform-machine
    /// scheduling line of Furmańczyk–Kubale (arXiv:1602.01867) studies
    /// exactly this family; its inequitable colorings are maximally
    /// constrained while every vertex still has one private partner.
    pub fn crown(n: usize) -> Self {
        let mut builder = GraphBuilder::new(2 * n);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    builder.add_edge(u as Vertex, (n + v) as Vertex);
                }
            }
        }
        builder.build()
    }

    /// A simple path `0 - 1 - ... - (n-1)`; bipartite, handy in tests.
    pub fn path(n: usize) -> Self {
        let edges: Vec<_> = (1..n as Vertex).map(|v| (v - 1, v)).collect();
        Self::from_edges(n, &edges)
    }

    /// A cycle on `n` vertices; bipartite iff `n` is even.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "a simple cycle needs at least 3 vertices");
        let mut edges: Vec<_> = (1..n as Vertex).map(|v| (v - 1, v)).collect();
        edges.push((n as Vertex - 1, 0));
        Self::from_edges(n, &edges)
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Neighbors of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree Δ(G).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether the edge `{u, v}` is present. `O(log deg(u))`.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.adj.len() as Vertex
    }

    /// Iterator over all edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as Vertex;
            nbrs.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Whether `set` (given as a membership mask over vertices) is an
    /// independent set: no edge has both endpoints inside. This is the
    /// schedule-feasibility primitive of the whole model.
    pub fn is_independent_mask(&self, mask: &[bool]) -> bool {
        debug_assert_eq!(mask.len(), self.num_vertices());
        self.edges()
            .all(|(u, v)| !(mask[u as usize] && mask[v as usize]))
    }

    /// Whether the listed vertices form an independent set.
    pub fn is_independent_set(&self, set: &[Vertex]) -> bool {
        let mut mask = vec![false; self.num_vertices()];
        for &v in set {
            mask[v as usize] = true;
        }
        self.is_independent_mask(&mask)
    }

    /// Disjoint union `self ⊎ other`; vertices of `other` are shifted by
    /// `self.num_vertices()`. Returns the shift applied to `other`.
    pub fn disjoint_union(&self, other: &Graph) -> (Graph, Vertex) {
        let shift = self.num_vertices() as Vertex;
        let mut adj = self.adj.clone();
        adj.extend(
            other
                .adj
                .iter()
                .map(|nbrs| nbrs.iter().map(|&v| v + shift).collect::<Vec<_>>()),
        );
        (
            Graph {
                adj,
                num_edges: self.num_edges + other.num_edges,
            },
            shift,
        )
    }

    /// The subgraph induced by the vertices where `keep` is true, together
    /// with the map `old id -> new id` (`u32::MAX` for dropped vertices).
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Graph, Vec<Vertex>) {
        debug_assert_eq!(keep.len(), self.num_vertices());
        let mut remap = vec![u32::MAX; self.num_vertices()];
        let mut next = 0u32;
        for v in 0..self.num_vertices() {
            if keep[v] {
                remap[v] = next;
                next += 1;
            }
        }
        let mut builder = GraphBuilder::new(next as usize);
        for (u, v) in self.edges() {
            if keep[u as usize] && keep[v as usize] {
                builder.add_edge(remap[u as usize], remap[v as usize]);
            }
        }
        (builder.build(), remap)
    }
}

/// Incremental builder for [`Graph`]. Deduplicates edges and rejects loops.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    adj: Vec<Vec<Vertex>>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            adj: vec![Vec::new(); n],
        }
    }

    /// Current number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Appends `count` fresh isolated vertices, returning the id of the first.
    pub fn add_vertices(&mut self, count: usize) -> Vertex {
        let first = self.adj.len() as Vertex;
        self.adj.resize(self.adj.len() + count, Vec::new());
        first
    }

    /// Adds the undirected edge `{u, v}`. Panics on self-loops or
    /// out-of-range endpoints. Duplicates are removed at [`build`] time.
    ///
    /// [`build`]: GraphBuilder::build
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) {
        assert_ne!(
            u, v,
            "self-loops are not allowed in an incompatibility graph"
        );
        assert!(
            (u as usize) < self.adj.len() && (v as usize) < self.adj.len(),
            "edge ({u}, {v}) out of range for {} vertices",
            self.adj.len()
        );
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
    }

    /// Finalizes into an immutable [`Graph`]: sorts adjacency lists and
    /// merges duplicate edges.
    pub fn build(mut self) -> Graph {
        let mut num_half_edges = 0usize;
        for nbrs in &mut self.adj {
            nbrs.sort_unstable();
            nbrs.dedup();
            num_half_edges += nbrs.len();
        }
        debug_assert_eq!(num_half_edges % 2, 0);
        Graph {
            adj: self.adj,
            num_edges: num_half_edges / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.is_independent_set(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn from_edges_dedups_and_sorts() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_rejected() {
        Graph::from_edges(2, &[(1, 1)]);
    }

    #[test]
    fn crown_is_complete_bipartite_minus_perfect_matching() {
        let g = Graph::crown(4);
        assert_eq!(g.num_vertices(), 8);
        assert_eq!(g.num_edges(), 4 * 3);
        for v in 0..4 {
            assert_eq!(g.degree(v), 3);
            assert!(!g.has_edge(v, 4 + v), "private partner must stay free");
        }
        // Degenerate sizes are fine.
        assert_eq!(Graph::crown(0).num_vertices(), 0);
        assert_eq!(Graph::crown(1).num_edges(), 0);
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = Graph::complete_bipartite(3, 4);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.max_degree(), 4);
        // each part is independent
        assert!(g.is_independent_set(&[0, 1, 2]));
        assert!(g.is_independent_set(&[3, 4, 5, 6]));
        assert!(!g.is_independent_set(&[0, 3]));
    }

    #[test]
    fn path_and_cycle_shapes() {
        let p = Graph::path(5);
        assert_eq!(p.num_edges(), 4);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
        let c = Graph::cycle(6);
        assert_eq!(c.num_edges(), 6);
        assert!(c.vertices().all(|v| c.degree(v) == 2));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = Graph::complete_bipartite(2, 3);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), g.num_edges());
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn independent_set_detection() {
        let g = Graph::path(4); // 0-1-2-3
        assert!(g.is_independent_set(&[0, 2]));
        assert!(g.is_independent_set(&[1, 3]));
        assert!(g.is_independent_set(&[0, 3]));
        assert!(!g.is_independent_set(&[0, 1]));
        assert!(g.is_independent_set(&[]));
    }

    #[test]
    fn disjoint_union_shifts_ids() {
        let a = Graph::path(3);
        let b = Graph::cycle(4);
        let (u, shift) = a.disjoint_union(&b);
        assert_eq!(shift, 3);
        assert_eq!(u.num_vertices(), 7);
        assert_eq!(u.num_edges(), 2 + 4);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(3, 4));
        assert!(!u.has_edge(2, 3));
    }

    #[test]
    fn induced_subgraph_remaps() {
        let g = Graph::path(5); // 0-1-2-3-4
        let keep = vec![true, false, true, true, true];
        let (sub, remap) = g.induced_subgraph(&keep);
        assert_eq!(sub.num_vertices(), 4);
        // only edges 2-3, 3-4 survive
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(remap[0], 0);
        assert_eq!(remap[1], u32::MAX);
        assert_eq!(remap[2], 1);
        assert!(sub.has_edge(remap[2], remap[3]));
    }

    #[test]
    fn builder_add_vertices_returns_first_fresh_id() {
        let mut b = GraphBuilder::new(2);
        let first = b.add_vertices(3);
        assert_eq!(first, 2);
        assert_eq!(b.num_vertices(), 5);
        b.add_edge(0, 4);
        let g = b.build();
        assert!(g.has_edge(0, 4));
    }
}
