//! Connected components.
//!
//! Components are the unit of choice in most of the paper's machinery: the
//! inequitable coloring (Definition 1) flips component orientations
//! independently, Algorithm 3 reduces `R2|G = bipartite|C_max` "by each
//! connected component separately", and the Theorem 4 exact algorithm does
//! subset-sum over per-component part sizes.

use crate::graph::{Graph, Vertex};

/// Partition of the vertex set into connected components.
#[derive(Clone, Debug)]
pub struct Components {
    /// `component_of[v]` = index of the component containing `v`.
    component_of: Vec<u32>,
    /// Vertices of each component, ascending within a component.
    members: Vec<Vec<Vertex>>,
}

impl Components {
    /// Computes connected components with an iterative DFS. `O(|V| + |E|)`.
    pub fn of(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut component_of = vec![u32::MAX; n];
        let mut members: Vec<Vec<Vertex>> = Vec::new();
        let mut stack: Vec<Vertex> = Vec::new();
        for root in 0..n as Vertex {
            if component_of[root as usize] != u32::MAX {
                continue;
            }
            let id = members.len() as u32;
            let mut verts = Vec::new();
            component_of[root as usize] = id;
            stack.push(root);
            while let Some(u) = stack.pop() {
                verts.push(u);
                for &v in g.neighbors(u) {
                    if component_of[v as usize] == u32::MAX {
                        component_of[v as usize] = id;
                        stack.push(v);
                    }
                }
            }
            verts.sort_unstable();
            members.push(verts);
        }
        Components {
            component_of,
            members,
        }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// Component index of vertex `v`.
    #[inline]
    pub fn component_of(&self, v: Vertex) -> u32 {
        self.component_of[v as usize]
    }

    /// Vertices of component `c`, ascending.
    pub fn members(&self, c: u32) -> &[Vertex] {
        &self.members[c as usize]
    }

    /// Iterator over component vertex lists.
    pub fn iter(&self) -> impl Iterator<Item = &[Vertex]> {
        self.members.iter().map(Vec::as_slice)
    }

    /// Whether `u` and `v` are connected.
    pub fn same_component(&self, u: Vertex, v: Vertex) -> bool {
        self.component_of(u) == self.component_of(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_all_singletons() {
        let g = Graph::empty(4);
        let c = Components::of(&g);
        assert_eq!(c.count(), 4);
        for v in 0..4 {
            assert_eq!(c.members(c.component_of(v)), &[v]);
        }
    }

    #[test]
    fn path_is_one_component() {
        let g = Graph::path(6);
        let c = Components::of(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.members(0), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn union_keeps_components_apart() {
        let (g, shift) = Graph::path(3).disjoint_union(&Graph::cycle(4));
        let c = Components::of(&g);
        assert_eq!(c.count(), 2);
        assert!(c.same_component(0, 2));
        assert!(c.same_component(shift, shift + 3));
        assert!(!c.same_component(0, shift));
    }

    #[test]
    fn mixed_isolated_and_connected() {
        // edge 1-3, vertices 0,2,4 isolated
        let g = Graph::from_edges(5, &[(1, 3)]);
        let c = Components::of(&g);
        assert_eq!(c.count(), 4);
        assert!(c.same_component(1, 3));
        let sizes: Vec<_> = c.iter().map(|m| m.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 5);
        assert_eq!(*sizes.iter().max().unwrap(), 2);
    }
}
