//! The reduction gadgets of Figure 1: components `H1(x)`, `H2(x', x)`,
//! `H3(x'', x', x)` and their colour-forcing properties (Lemmas 5–7).
//!
//! Attaching `H1(x)` to a vertex `v` forces: either `v` avoids colour `c1`,
//! or at least `x` vertices take colours outside `{c1}`. `H2`/`H3` cascade
//! the same idea one/two levels deeper. Theorem 8 wires six of these onto
//! the three precoloured vertices of a 1-PrExt instance so that *any*
//! cheap schedule on the prepared uniform machines decodes into a proper
//! colour extension.
//!
//! Structure (derived from Figure 1 and verified against the paper's vertex
//! count `n' = n + 48k²n + 4kn + 2`):
//!
//! * `H1(x)`: `x` leaves, all adjacent to the attachment vertex.
//! * `H2(x', x)`: a middle row of `x'` vertices adjacent to the attachment
//!   vertex, completely joined to a top row of `x` vertices.
//! * `H3(x'', x', x)`: a third row of `x''` vertices adjacent to the
//!   attachment vertex, completely joined to (a) a second row of `x'`
//!   vertices — itself completely joined to a top row of `x` vertices — and
//!   (b) a private row of `x` vertices (the `v*` row of Figure 1c).
//!
//! All three are bipartite and attach to either side of a bipartition.

use crate::graph::{GraphBuilder, Vertex};
use std::ops::Range;

/// Handle to an attached `H1(x)`: the leaf row.
#[derive(Clone, Debug)]
pub struct H1 {
    /// The `x` leaves `v_1..v_x`, adjacent to the attachment vertex.
    pub leaves: Range<Vertex>,
}

/// Handle to an attached `H2(x', x)`.
#[derive(Clone, Debug)]
pub struct H2 {
    /// Top row `v_1..v_x`.
    pub top: Range<Vertex>,
    /// Middle row `v'_1..v'_{x'}`, adjacent to the attachment vertex.
    pub mid: Range<Vertex>,
}

/// Handle to an attached `H3(x'', x', x)`.
#[derive(Clone, Debug)]
pub struct H3 {
    /// Top row `v_1..v_x`.
    pub top: Range<Vertex>,
    /// Second row `v'_1..v'_{x'}`.
    pub second: Range<Vertex>,
    /// Third row `v''_1..v''_{x''}`, adjacent to the attachment vertex.
    pub third: Range<Vertex>,
    /// The private row `v*_1..v*_x` of Figure 1c.
    pub star: Range<Vertex>,
}

impl H1 {
    /// Total vertices added by this gadget.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }
}

impl H2 {
    /// Total vertices added by this gadget (`x + x'`).
    pub fn size(&self) -> usize {
        self.top.len() + self.mid.len()
    }
}

impl H3 {
    /// Total vertices added by this gadget (`x'' + x' + 2x`).
    pub fn size(&self) -> usize {
        self.top.len() + self.second.len() + self.third.len() + self.star.len()
    }
}

fn fresh_row(b: &mut GraphBuilder, count: usize) -> Range<Vertex> {
    let first = b.add_vertices(count);
    first..first + count as Vertex
}

/// Attaches `H1(x)` to vertex `v`: adds `x` fresh leaves adjacent to `v`.
pub fn attach_h1(b: &mut GraphBuilder, v: Vertex, x: usize) -> H1 {
    let leaves = fresh_row(b, x);
    for u in leaves.clone() {
        b.add_edge(v, u);
    }
    H1 { leaves }
}

/// Attaches `H2(x', x)` to vertex `v`.
pub fn attach_h2(b: &mut GraphBuilder, v: Vertex, x_prime: usize, x: usize) -> H2 {
    let top = fresh_row(b, x);
    let mid = fresh_row(b, x_prime);
    for p in mid.clone() {
        b.add_edge(v, p);
        for t in top.clone() {
            b.add_edge(p, t);
        }
    }
    H2 { top, mid }
}

/// Attaches `H3(x'', x', x)` to vertex `v`.
pub fn attach_h3(b: &mut GraphBuilder, v: Vertex, x_pprime: usize, x_prime: usize, x: usize) -> H3 {
    let top = fresh_row(b, x);
    let second = fresh_row(b, x_prime);
    let third = fresh_row(b, x_pprime);
    let star = fresh_row(b, x);
    for d in third.clone() {
        b.add_edge(v, d);
        for p in second.clone() {
            b.add_edge(d, p);
        }
        for s in star.clone() {
            b.add_edge(d, s);
        }
    }
    for p in second.clone() {
        for t in top.clone() {
            b.add_edge(p, t);
        }
    }
    H3 {
        top,
        second,
        third,
        star,
    }
}

/// Counts vertices in `row` whose colour is **not** in `excluded`.
/// Used to phrase the Lemma 5–7 case analyses.
pub fn count_outside(colors: &[u8], row: &Range<Vertex>, excluded: &[u8]) -> usize {
    row.clone()
        .filter(|&u| !excluded.contains(&colors[u as usize]))
        .count()
}

fn count_outside_rows(colors: &[u8], rows: &[&Range<Vertex>], excluded: &[u8]) -> usize {
    rows.iter()
        .map(|row| count_outside(colors, row, excluded))
        .sum()
}

/// Lemma 5 disjunction for an `H1(x)` attached at `v`: either `v` is not
/// coloured `c1`, or at least `x` vertices take colours outside `{c1}`.
/// The paper counts qualifying vertices anywhere in `G`; here we count over
/// the gadget's own rows, which is the *stronger* statement the reduction
/// actually relies on (the gadget must supply the witnesses by itself).
pub fn lemma5_holds(colors: &[u8], h: &H1, v: Vertex, c1: u8) -> bool {
    colors[v as usize] != c1 || count_outside(colors, &h.leaves, &[c1]) >= h.leaves.len()
}

/// Lemma 6 disjunction for an `H2(x', x)` attached at `v` with colours
/// `(c1, c2)`. Witness counts are taken over the gadget's rows (see
/// [`lemma5_holds`]); thresholds are `x' = |mid|` and `x = |top|`.
pub fn lemma6_holds(colors: &[u8], h: &H2, v: Vertex, c1: u8, c2: u8) -> bool {
    let rows: [&Range<Vertex>; 2] = [&h.top, &h.mid];
    colors[v as usize] != c2
        || count_outside_rows(colors, &rows, &[c1, c2]) >= h.mid.len()
        || count_outside_rows(colors, &rows, &[c1]) >= h.top.len()
}

/// Lemma 7 disjunction for an `H3(x'', x', x)` attached at `v` with colours
/// `(c1, c2, c3)`. Witness counts are taken over the gadget's rows;
/// thresholds are `x'' = |third|`, `x' = |second|`, `x = |top| = |star|`.
pub fn lemma7_holds(colors: &[u8], h: &H3, v: Vertex, c1: u8, c2: u8, c3: u8) -> bool {
    let rows: [&Range<Vertex>; 4] = [&h.top, &h.second, &h.third, &h.star];
    colors[v as usize] != c3
        || count_outside_rows(colors, &rows, &[c1, c2, c3]) >= h.third.len()
        || count_outside_rows(colors, &rows, &[c1, c2]) >= h.second.len()
        || count_outside_rows(colors, &rows, &[c1]) >= h.top.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::is_bipartite;
    use crate::graph::Graph;

    fn build_with<F, H>(attach: F) -> (Graph, Vertex, H)
    where
        F: FnOnce(&mut GraphBuilder, Vertex) -> H,
    {
        let mut b = GraphBuilder::new(1);
        let v = 0;
        let h = attach(&mut b, v);
        (b.build(), v, h)
    }

    /// Enumerate all colorings of `g` with `num_colors` colours and check
    /// that `pred` holds for every *proper* coloring.
    fn for_all_proper_colorings(g: &Graph, num_colors: u8, mut pred: impl FnMut(&[u8])) {
        let n = g.num_vertices();
        assert!(n <= 12, "exhaustive enumeration only for small gadgets");
        let mut colors = vec![0u8; n];
        let total = (num_colors as u64).pow(n as u32);
        'outer: for code in 0..total {
            let mut c = code;
            for slot in colors.iter_mut() {
                *slot = (c % num_colors as u64) as u8;
                c /= num_colors as u64;
            }
            for (u, w) in g.edges() {
                if colors[u as usize] == colors[w as usize] {
                    continue 'outer;
                }
            }
            pred(&colors);
        }
    }

    #[test]
    fn h1_shape_and_size() {
        let (g, v, h) = build_with(|b, v| attach_h1(b, v, 4));
        assert_eq!(h.size(), 4);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert!(is_bipartite(&g));
        for u in h.leaves.clone() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn h2_shape_and_size() {
        let (g, v, h) = build_with(|b, v| attach_h2(b, v, 2, 3));
        assert_eq!(h.size(), 5);
        assert_eq!(g.num_vertices(), 6);
        // x' attachment edges + x*x' complete join
        assert_eq!(g.num_edges(), 2 + 6);
        assert!(is_bipartite(&g));
        for p in h.mid.clone() {
            assert!(g.has_edge(v, p));
            for t in h.top.clone() {
                assert!(g.has_edge(p, t));
            }
        }
    }

    #[test]
    fn h3_shape_and_size_matches_paper_count() {
        let (g, _, h) = build_with(|b, v| attach_h3(b, v, 1, 2, 3));
        // x'' + x' + 2x = 1 + 2 + 6
        assert_eq!(h.size(), 9);
        assert_eq!(g.num_vertices(), 10);
        assert!(is_bipartite(&g));
    }

    #[test]
    fn theorem8_vertex_count_formula() {
        // n' = n + 48k^2 n + 4kn + 2 for the six components of Theorem 8
        // (x = 6k^2 n, x' = kn, x'' = 1).
        for (n, k) in [(3usize, 1usize), (5, 2), (7, 3)] {
            let x = 6 * k * k * n;
            let xp = k * n;
            let h2 = 2 * (x + xp);
            let h1 = 2 * x;
            let h3 = 2 * (1 + xp + 2 * x);
            assert_eq!(h1 + h2 + h3, 48 * k * k * n + 4 * k * n + 2);
        }
    }

    #[test]
    fn lemma5_exhaustive() {
        for x in 1..=3 {
            let (g, v, h) = build_with(|b, v| attach_h1(b, v, x));
            for num_colors in 2..=3u8 {
                for_all_proper_colorings(&g, num_colors, |colors| {
                    assert!(
                        lemma5_holds(colors, &h, v, 0),
                        "Lemma 5 violated: x={x}, colors={colors:?}"
                    );
                });
            }
        }
    }

    #[test]
    fn lemma6_exhaustive() {
        for (xp, x) in [(1usize, 1usize), (1, 2), (2, 2), (2, 3)] {
            let (g, v, h) = build_with(|b, v| attach_h2(b, v, xp, x));
            for_all_proper_colorings(&g, 3, |colors| {
                assert!(
                    lemma6_holds(colors, &h, v, 0, 1),
                    "Lemma 6 violated: x'={xp}, x={x}, colors={colors:?}"
                );
            });
        }
    }

    #[test]
    fn lemma7_exhaustive() {
        for (xpp, xp, x) in [(1usize, 1usize, 1usize), (1, 1, 2), (1, 2, 2)] {
            let (g, v, h) = build_with(|b, v| attach_h3(b, v, xpp, xp, x));
            for_all_proper_colorings(&g, 4, |colors| {
                assert!(
                    lemma7_holds(colors, &h, v, 0, 1, 2),
                    "Lemma 7 violated: x''={xpp}, x'={xp}, x={x}, colors={colors:?}"
                );
            });
        }
    }

    #[test]
    fn lemma5_cases_are_tight() {
        // With v coloured c1 there IS a coloring placing exactly x leaves
        // outside c1 — the bound can be met with equality, not bypassed.
        let (g, v, h) = build_with(|b, v| attach_h1(b, v, 3));
        let mut colors = vec![1u8; g.num_vertices()];
        colors[v as usize] = 0;
        assert!(g
            .edges()
            .all(|(a, b)| colors[a as usize] != colors[b as usize]));
        assert_eq!(count_outside(&colors, &h.leaves, &[0]), 3);
        assert!(lemma5_holds(&colors, &h, v, 0));
    }

    #[test]
    fn gadgets_compose_on_shared_attachment() {
        // Theorem 8 attaches two gadgets to the same vertex; the result must
        // stay bipartite and the handles must not overlap.
        let mut b = GraphBuilder::new(1);
        let h2 = attach_h2(&mut b, 0, 2, 3);
        let h3 = attach_h3(&mut b, 0, 1, 2, 3);
        let g = b.build();
        assert!(is_bipartite(&g));
        assert_eq!(g.num_vertices(), 1 + h2.size() + h3.size());
        assert!(h2.top.end <= h3.top.start);
    }
}
