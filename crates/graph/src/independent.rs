//! Maximum-weight independent sets in bipartite graphs.
//!
//! Algorithm 1 (step 2) needs "an independent set of the highest weight
//! containing all jobs of processing requirement at least `√Σp_j`, if such a
//! set exists". For bipartite graphs this is polynomial: a maximum-weight
//! independent set is the complement of a minimum-weight vertex cover, which
//! is a minimum `s`–`t` cut of the standard projection network
//! (weighted König). The "containing a forced set" variant removes the
//! closed neighbourhood of the forced vertices first, exactly as Lemma 10's
//! complexity accounting assumes.

use crate::bipartite::{bipartition, Side};
use crate::flow::{FlowNetwork, INF_CAP};
use crate::graph::{Graph, Vertex};

/// A maximum-weight independent set together with its total weight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedIs {
    /// Member vertices, ascending.
    pub vertices: Vec<Vertex>,
    /// Total weight of the set.
    pub weight: u64,
}

/// Maximum-weight independent set of a *bipartite* graph via min-cut.
///
/// Network: `s -> left(w)`, `right -> t(w)`, `left -> right(∞)` for edges.
/// The min cut is a minimum-weight vertex cover; its complement is returned.
///
/// Panics if `g` is not bipartite (callers in this workspace have already
/// certified bipartiteness; the scheduling APIs surface it as an error).
pub fn max_weight_independent_set(g: &Graph, weights: &[u64]) -> WeightedIs {
    assert_eq!(weights.len(), g.num_vertices());
    let bp = bipartition(g).expect("max_weight_independent_set requires a bipartite graph");
    let n = g.num_vertices();
    // Nodes: 0 = source, 1..=n = vertices, n+1 = sink.
    let s = 0usize;
    let t = n + 1;
    let mut net = FlowNetwork::new(n + 2);
    for (v, &w) in weights.iter().enumerate() {
        match bp.side(v as Vertex) {
            Side::Left => net.add_arc(s, v + 1, w),
            Side::Right => net.add_arc(v + 1, t, w),
        }
    }
    for (u, v) in g.edges() {
        let (l, r) = match bp.side(u) {
            Side::Left => (u, v),
            Side::Right => (v, u),
        };
        net.add_arc(l as usize + 1, r as usize + 1, INF_CAP);
    }
    let cover_weight = net.max_flow(s, t);
    let reach = net.min_cut_source_side(s);
    // Cover: unreachable left vertices + reachable right vertices.
    // Independent set: reachable left + unreachable right.
    let vertices: Vec<Vertex> = (0..n as Vertex)
        .filter(|&v| match bp.side(v) {
            Side::Left => reach[v as usize + 1],
            Side::Right => !reach[v as usize + 1],
        })
        .collect();
    let weight: u64 = vertices.iter().map(|&v| weights[v as usize]).sum();
    debug_assert_eq!(
        weight,
        weights.iter().sum::<u64>() - cover_weight,
        "complementary slackness: w(MWIS) = w(V) - mincut"
    );
    debug_assert!(g.is_independent_set(&vertices));
    WeightedIs { vertices, weight }
}

/// Maximum-weight independent set **containing every vertex of `forced`**,
/// or `None` if `forced` itself is not independent.
///
/// Removes the closed neighbourhood of `forced`, solves MWIS on the rest,
/// and unions. This is exactly Algorithm 1's step 2 with `forced` = the jobs
/// of processing requirement `≥ √Σp_j`.
pub fn max_weight_is_containing(
    g: &Graph,
    weights: &[u64],
    forced: &[Vertex],
) -> Option<WeightedIs> {
    if !g.is_independent_set(forced) {
        return None;
    }
    let n = g.num_vertices();
    let mut keep = vec![true; n];
    for &v in forced {
        keep[v as usize] = false;
        for &u in g.neighbors(v) {
            keep[u as usize] = false;
        }
    }
    let (sub, remap) = g.induced_subgraph(&keep);
    let sub_weights: Vec<u64> = (0..n).filter(|&v| keep[v]).map(|v| weights[v]).collect();
    let rest = max_weight_independent_set(&sub, &sub_weights);

    // Map back: invert `remap` (old -> new) for kept vertices.
    let mut back = vec![u32::MAX; sub.num_vertices()];
    for v in 0..n {
        if keep[v] {
            back[remap[v] as usize] = v as Vertex;
        }
    }
    let mut vertices: Vec<Vertex> = forced.to_vec();
    vertices.extend(rest.vertices.iter().map(|&v| back[v as usize]));
    vertices.sort_unstable();
    vertices.dedup();
    let weight = vertices.iter().map(|&v| weights[v as usize]).sum();
    debug_assert!(g.is_independent_set(&vertices));
    Some(WeightedIs { vertices, weight })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force MWIS for cross-checking (graphs with <= 20 vertices).
    fn brute_mwis(g: &Graph, weights: &[u64]) -> u64 {
        let n = g.num_vertices();
        assert!(n <= 20);
        let mut best = 0u64;
        for mask in 0u32..(1 << n) {
            let members: Vec<Vertex> = (0..n as Vertex).filter(|&v| mask >> v & 1 == 1).collect();
            if g.is_independent_set(&members) {
                best = best.max(members.iter().map(|&v| weights[v as usize]).sum());
            }
        }
        best
    }

    #[test]
    fn single_edge_takes_heavier_endpoint() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let is = max_weight_independent_set(&g, &[3, 8]);
        assert_eq!(is.vertices, vec![1]);
        assert_eq!(is.weight, 8);
    }

    #[test]
    fn empty_graph_takes_everything() {
        let g = Graph::empty(4);
        let is = max_weight_independent_set(&g, &[1, 2, 3, 4]);
        assert_eq!(is.weight, 10);
        assert_eq!(is.vertices.len(), 4);
    }

    #[test]
    fn path_alternation_beats_endpoints() {
        // 0-1-2, weights favor the middle vertex.
        let g = Graph::path(3);
        let is = max_weight_independent_set(&g, &[1, 5, 1]);
        assert_eq!(is.vertices, vec![1]);
        assert_eq!(is.weight, 5);
        let is2 = max_weight_independent_set(&g, &[4, 5, 4]);
        assert_eq!(is2.vertices, vec![0, 2]);
        assert_eq!(is2.weight, 8);
    }

    #[test]
    fn matches_bruteforce_on_fixed_graphs() {
        let cases = vec![
            (Graph::cycle(6), vec![5u64, 1, 5, 1, 5, 1]),
            (Graph::complete_bipartite(3, 4), vec![9, 9, 9, 7, 7, 7, 7]),
            (
                Graph::from_edges(8, &[(0, 4), (0, 5), (1, 4), (2, 6), (3, 7), (1, 7)]),
                vec![3, 1, 4, 1, 5, 9, 2, 6],
            ),
        ];
        for (g, w) in cases {
            let is = max_weight_independent_set(&g, &w);
            assert_eq!(is.weight, brute_mwis(&g, &w), "on {g:?}");
            assert!(g.is_independent_set(&is.vertices));
        }
    }

    #[test]
    fn forced_set_not_independent_returns_none() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        assert!(max_weight_is_containing(&g, &[1, 1, 1], &[0, 1]).is_none());
    }

    #[test]
    fn forced_vertices_always_included() {
        // Star: center 0 heavy, but forcing a leaf excludes the center.
        let g = Graph::complete_bipartite(1, 4);
        let w = vec![100, 1, 1, 1, 1];
        let free = max_weight_independent_set(&g, &w);
        assert_eq!(free.weight, 100);
        let forced = max_weight_is_containing(&g, &w, &[1]).unwrap();
        assert!(forced.vertices.contains(&1));
        assert!(!forced.vertices.contains(&0));
        assert_eq!(forced.weight, 4); // all four leaves
    }

    #[test]
    fn forced_empty_reduces_to_plain_mwis() {
        let g = Graph::cycle(8);
        let w = vec![2u64; 8];
        let a = max_weight_independent_set(&g, &w);
        let b = max_weight_is_containing(&g, &w, &[]).unwrap();
        assert_eq!(a.weight, b.weight);
    }

    #[test]
    fn forced_containing_matches_restricted_bruteforce() {
        let g = Graph::from_edges(7, &[(0, 3), (1, 3), (1, 4), (2, 5), (2, 6), (0, 6)]);
        let w = vec![4u64, 7, 2, 9, 3, 8, 5];
        let forced = vec![1u32];
        let got = max_weight_is_containing(&g, &w, &forced).unwrap();
        // brute force over sets containing vertex 1
        let n = g.num_vertices();
        let mut best = 0u64;
        for mask in 0u32..(1 << n) {
            if mask >> 1 & 1 == 0 {
                continue;
            }
            let members: Vec<Vertex> = (0..n as Vertex).filter(|&v| mask >> v & 1 == 1).collect();
            if g.is_independent_set(&members) {
                best = best.max(members.iter().map(|&v| w[v as usize]).sum());
            }
        }
        assert_eq!(got.weight, best);
    }
}
