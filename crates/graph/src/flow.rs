//! Dinic's maximum-flow algorithm.
//!
//! The paper's Algorithm 1 needs a *maximum-weight independent set* in a
//! bipartite graph (step 2), which classically reduces to a minimum `s`–`t`
//! cut in a flow network (the paper cites Orlin [22] for the flow step; we
//! implement Dinic, whose `O(E √V)`-on-unit-ish-networks behaviour is more
//! than adequate at our scales and is ~150 lines instead of a research
//! codebase).

/// Sentinel "infinite" capacity. Large enough that sums never overflow `u64`
/// in our networks (weights are `u64` job sizes; networks have < 2^20 arcs).
pub const INF_CAP: u64 = u64::MAX / 4;

#[derive(Clone, Debug)]
struct Arc {
    to: u32,
    /// Residual capacity.
    cap: u64,
    /// Index of the reverse arc in `to`'s list.
    rev: u32,
}

/// A flow network on dense node ids with Dinic's algorithm.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    adj: Vec<Vec<Arc>>,
}

impl FlowNetwork {
    /// A network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed arc `from -> to` with capacity `cap` (and its zero-
    /// capacity reverse).
    pub fn add_arc(&mut self, from: usize, to: usize, cap: u64) {
        assert!(from != to, "self-arcs carry no flow");
        let rev_from = self.adj[to].len() as u32;
        let rev_to = self.adj[from].len() as u32;
        self.adj[from].push(Arc {
            to: to as u32,
            cap,
            rev: rev_from,
        });
        self.adj[to].push(Arc {
            to: from as u32,
            cap: 0,
            rev: rev_to,
        });
    }

    /// Computes the maximum `s`–`t` flow; mutates residual capacities.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert_ne!(s, t);
        let n = self.num_nodes();
        let mut flow = 0u64;
        let mut level = vec![u32::MAX; n];
        let mut iter = vec![0u32; n];
        loop {
            // BFS: build level graph.
            level.iter_mut().for_each(|l| *l = u32::MAX);
            level[s] = 0;
            let mut queue = std::collections::VecDeque::from([s as u32]);
            while let Some(u) = queue.pop_front() {
                for arc in &self.adj[u as usize] {
                    if arc.cap > 0 && level[arc.to as usize] == u32::MAX {
                        level[arc.to as usize] = level[u as usize] + 1;
                        queue.push_back(arc.to);
                    }
                }
            }
            if level[t] == u32::MAX {
                return flow;
            }
            // DFS: blocking flow.
            iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs(s, t, INF_CAP, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, limit: u64, level: &[u32], iter: &mut [u32]) -> u64 {
        if u == t {
            return limit;
        }
        while (iter[u] as usize) < self.adj[u].len() {
            let i = iter[u] as usize;
            let (to, cap, rev) = {
                let a = &self.adj[u][i];
                (a.to as usize, a.cap, a.rev as usize)
            };
            if cap > 0 && level[to] == level[u] + 1 {
                let pushed = self.dfs(to, t, limit.min(cap), level, iter);
                if pushed > 0 {
                    self.adj[u][i].cap -= pushed;
                    self.adj[to][rev].cap += pushed;
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0
    }

    /// After [`max_flow`], the source side of a minimum cut: nodes reachable
    /// from `s` in the residual network.
    ///
    /// [`max_flow`]: FlowNetwork::max_flow
    pub fn min_cut_source_side(&self, s: usize) -> Vec<bool> {
        let n = self.num_nodes();
        let mut reach = vec![false; n];
        reach[s] = true;
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            for arc in &self.adj[u] {
                if arc.cap > 0 && !reach[arc.to as usize] {
                    reach[arc.to as usize] = true;
                    stack.push(arc.to as usize);
                }
            }
        }
        reach
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_arc() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 7);
        assert_eq!(net.max_flow(0, 1), 7);
    }

    #[test]
    fn series_takes_minimum() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 10);
        net.add_arc(1, 2, 4);
        assert_eq!(net.max_flow(0, 2), 4);
    }

    #[test]
    fn parallel_paths_add() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 3);
        net.add_arc(1, 3, 3);
        net.add_arc(0, 2, 5);
        net.add_arc(2, 3, 2);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS Figure 26.6 instance; max flow 23.
        let mut net = FlowNetwork::new(6);
        net.add_arc(0, 1, 16);
        net.add_arc(0, 2, 13);
        net.add_arc(1, 3, 12);
        net.add_arc(2, 1, 4);
        net.add_arc(2, 4, 14);
        net.add_arc(3, 2, 9);
        net.add_arc(3, 5, 20);
        net.add_arc(4, 3, 7);
        net.add_arc(4, 5, 4);
        assert_eq!(net.max_flow(0, 5), 23);
    }

    #[test]
    fn min_cut_separates_s_from_t() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1);
        net.add_arc(1, 2, 100);
        net.add_arc(2, 3, 100);
        let f = net.max_flow(0, 3);
        assert_eq!(f, 1);
        let side = net.min_cut_source_side(0);
        assert!(side[0]);
        assert!(!side[3]);
        // The bottleneck arc 0->1 crosses the cut.
        assert!(!side[1]);
    }

    #[test]
    fn disconnected_zero_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 5);
        net.add_arc(2, 3, 5);
        assert_eq!(net.max_flow(0, 3), 0);
        let side = net.min_cut_source_side(0);
        assert!(side[1]);
        assert!(!side[2]);
    }

    #[test]
    fn flow_respects_infinite_caps() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, INF_CAP);
        net.add_arc(1, 2, 9);
        net.add_arc(2, 3, INF_CAP);
        assert_eq!(net.max_flow(0, 3), 9);
    }

    #[test]
    fn bipartite_matching_as_unit_flow() {
        // Matching via flow must agree with Hopcroft-Karp on K_{3,5}.
        let mut net = FlowNetwork::new(10); // s=0, left 1..=3, right 4..=8, t=9
        for l in 1..=3 {
            net.add_arc(0, l, 1);
            for r in 4..=8 {
                net.add_arc(l, r, 1);
            }
        }
        for r in 4..=8 {
            net.add_arc(r, 9, 1);
        }
        assert_eq!(net.max_flow(0, 9), 3);
    }
}
