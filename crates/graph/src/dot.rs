//! Graphviz DOT export, used by the Figure 1 experiment binary to render
//! the gadget components and by debugging sessions generally.

use crate::graph::Graph;

/// Renders `g` in DOT format. `labels` (optional) supplies per-vertex label
/// text; vertices sharing a label prefix can be ranked by downstream tools.
pub fn to_dot(g: &Graph, name: &str, labels: Option<&[String]>) -> String {
    let mut out = String::new();
    out.push_str(&format!("graph {name} {{\n"));
    for v in g.vertices() {
        match labels {
            Some(ls) => out.push_str(&format!("  v{v} [label=\"{}\"];\n", ls[v as usize])),
            None => out.push_str(&format!("  v{v};\n")),
        }
    }
    for (u, v) in g.edges() {
        out.push_str(&format!("  v{u} -- v{v};\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_edges_and_vertices() {
        let g = Graph::path(3);
        let dot = to_dot(&g, "p3", None);
        assert!(dot.starts_with("graph p3 {"));
        assert!(dot.contains("v0 -- v1;"));
        assert!(dot.contains("v1 -- v2;"));
        assert!(dot.contains("v2;"));
    }

    #[test]
    fn labels_are_emitted() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let labels = vec!["a".to_string(), "b".to_string()];
        let dot = to_dot(&g, "l", Some(&labels));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
    }
}
