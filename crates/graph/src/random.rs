//! Random bipartite graphs in Gilbert's model `G_{n,n,p(n)}` (Section 4.1).
//!
//! Following the paper (and [16]), `G_{n1,n2,p}` is the probability space of
//! spanning subgraphs of `K_{n1,n2}` where each of the `n1·n2` possible
//! edges appears independently with probability `p`. Two samplers:
//!
//! * a naive `O(n1·n2)` Bernoulli sweep, and
//! * Batagelj–Brandes geometric skip-sampling, `O(n1·n2·p)` expected — the
//!   one actually used, since the interesting regimes are `p(n) ∈ o(1)`.
//!
//! Both produce identically distributed graphs; a chi-square-ish unit test
//! cross-checks edge counts.

use crate::graph::{Graph, GraphBuilder, Vertex};
use rand::Rng;

/// Samples `G_{n1,n2,p}`: left part `0..n1`, right part `n1..n1+n2`.
///
/// Dispatches to skip-sampling for sparse `p`, naive sweep otherwise.
pub fn gilbert_bipartite<R: Rng + ?Sized>(n1: usize, n2: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    if p <= 0.0 || n1 == 0 || n2 == 0 {
        return Graph::empty(n1 + n2);
    }
    if p >= 1.0 {
        return Graph::complete_bipartite(n1, n2);
    }
    if p < 0.25 {
        gilbert_bipartite_skip(n1, n2, p, rng)
    } else {
        gilbert_bipartite_naive(n1, n2, p, rng)
    }
}

/// Naive sampler: one Bernoulli trial per potential edge. `O(n1·n2)`.
pub fn gilbert_bipartite_naive<R: Rng + ?Sized>(
    n1: usize,
    n2: usize,
    p: f64,
    rng: &mut R,
) -> Graph {
    let mut b = GraphBuilder::new(n1 + n2);
    for u in 0..n1 {
        for v in 0..n2 {
            if rng.gen_bool(p) {
                b.add_edge(u as Vertex, (n1 + v) as Vertex);
            }
        }
    }
    b.build()
}

/// Batagelj–Brandes skip sampler: jumps between present edges with
/// geometric gaps. Expected `O(n1·n2·p)`.
pub fn gilbert_bipartite_skip<R: Rng + ?Sized>(n1: usize, n2: usize, p: f64, rng: &mut R) -> Graph {
    let mut b = GraphBuilder::new(n1 + n2);
    let total = (n1 as u64) * (n2 as u64);
    let log_q = (1.0 - p).ln(); // negative
    let mut e: i64 = -1;
    loop {
        // Geometric skip: smallest k >= 1 with success, i.e.
        // k = floor(ln(U) / ln(1-p)) + 1 for U uniform in (0,1).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (u.ln() / log_q).floor() as i64 + 1;
        e += skip.max(1);
        if e as u64 >= total {
            break;
        }
        let left = (e as u64 / n2 as u64) as Vertex;
        let right = (n1 as u64 + e as u64 % n2 as u64) as Vertex;
        b.add_edge(left, right);
    }
    b.build()
}

/// Uniform random labelled tree on `n` vertices via a random Prüfer
/// sequence. Trees are the structured bipartite subclass the related work
/// ([3]) treats specially; here they feed structured-input tests for the
/// general algorithms.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    if n == 2 {
        return Graph::from_edges(2, &[(0, 1)]);
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1u32; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut b = GraphBuilder::new(n);
    // Standard decoding: repeatedly attach the smallest leaf.
    let mut leaf_heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &v in &prufer {
        let std::cmp::Reverse(leaf) = leaf_heap.pop().expect("tree decoding invariant");
        b.add_edge(leaf as Vertex, v as Vertex);
        degree[v] -= 1;
        if degree[v] == 1 {
            leaf_heap.push(std::cmp::Reverse(v));
        }
    }
    let std::cmp::Reverse(u) = leaf_heap.pop().expect("two leaves remain");
    let std::cmp::Reverse(v) = leaf_heap.pop().expect("two leaves remain");
    b.add_edge(u as Vertex, v as Vertex);
    b.build()
}

/// A caterpillar: a spine path of `spine` vertices, each with `legs`
/// pendant leaves — the bounded-degree bipartite shape of [7]/[23]-style
/// special cases. `Δ = legs + 2`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let mut b = GraphBuilder::new(spine);
    for v in 1..spine as Vertex {
        b.add_edge(v - 1, v);
    }
    for s in 0..spine as Vertex {
        let first = b.add_vertices(legs);
        for leaf in first..first + legs as Vertex {
            b.add_edge(s, leaf);
        }
    }
    b.build()
}

/// Random bipartite graph with maximum degree at most `max_deg` per side:
/// sampled as a union of `max_deg` random partial matchings. The
/// "bisubquartic" class of [23] is `max_deg ≤ 4`.
pub fn bounded_degree_bipartite<R: Rng + ?Sized>(
    n1: usize,
    n2: usize,
    max_deg: usize,
    keep_prob: f64,
    rng: &mut R,
) -> Graph {
    let mut b = GraphBuilder::new(n1 + n2);
    let k = n1.min(n2);
    for _ in 0..max_deg {
        // A random partial matching: shuffle one side, pair prefixes.
        let mut left: Vec<Vertex> = (0..n1 as Vertex).collect();
        let mut right: Vec<Vertex> = (n1 as Vertex..(n1 + n2) as Vertex).collect();
        shuffle(&mut left, rng);
        shuffle(&mut right, rng);
        for i in 0..k {
            if rng.gen_bool(keep_prob) {
                b.add_edge(left[i], right[i]);
            }
        }
    }
    b.build()
}

fn shuffle<R: Rng + ?Sized>(v: &mut [Vertex], rng: &mut R) {
    for i in (1..v.len()).rev() {
        v.swap(i, rng.gen_range(0..=i));
    }
}

/// A random `d`-regular bipartite graph on `n + n` vertices, built as the
/// union of `d` pairwise-disjoint perfect matchings: matching `s` joins
/// left `i` to right `π((i + s) mod n)` for a random permutation `π`.
/// Distinct shifts hit distinct right partners, so every vertex has degree
/// exactly `d`. `d = 3` gives the cubic bipartite graphs of the
/// Furmańczyk–Kubale uniform-machine line (arXiv:1502.04240).
pub fn regular_bipartite<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(d <= n, "a d-regular bipartite side needs n >= d");
    let mut pi: Vec<Vertex> = (0..n as Vertex).collect();
    shuffle(&mut pi, rng);
    let mut b = GraphBuilder::new(2 * n);
    for s in 0..d {
        for i in 0..n {
            b.add_edge(i as Vertex, n as Vertex + pi[(i + s) % n]);
        }
    }
    b.build()
}

/// A random labelled forest: `trees` independent uniform random trees over
/// `n` vertices total (sizes as equal as possible). Forests are the
/// tree-structured bipartite subclass the related work ([3]) solves
/// exactly; here they exercise the component-wise paths of the general
/// algorithms.
pub fn random_forest<R: Rng + ?Sized>(n: usize, trees: usize, rng: &mut R) -> Graph {
    assert!(trees >= 1);
    let mut g = Graph::empty(0);
    let (base, extra) = (n / trees, n % trees);
    for t in 0..trees {
        let size = base + usize::from(t < extra);
        g = g.disjoint_union(&random_tree(size, rng)).0;
    }
    g
}

/// The three `p(n)` regimes the paper analyses, plus the constant regime of
/// Corollary 16. Parameterised so experiment sweeps can name them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EdgeProbability {
    /// `p(n) = n^{-exponent}` with `exponent > 1`: the `o(1/n)` regime
    /// (Corollary 11 — almost all vertices land in `V'_1`).
    SubCritical {
        /// Decay exponent, `> 1`.
        exponent: f64,
    },
    /// `p(n) = a/n`: the critical window (Lemmas 12–14).
    Critical {
        /// Mean left-degree `a`.
        a: f64,
    },
    /// `p(n) = c·n^{-exponent}` with `0 < exponent < 1`: the `ω(1/n) ∩ o(1)`
    /// regime (Corollary 18 — near-perfect matchings).
    SuperCritical {
        /// Scale factor.
        c: f64,
        /// Decay exponent, in `(0, 1)`.
        exponent: f64,
    },
    /// `p(n) = p` constant: the `Ω(1)` regime (Corollary 16).
    Constant {
        /// The constant probability.
        p: f64,
    },
}

impl EdgeProbability {
    /// Evaluates `p(n)`, clamped into `[0, 1]`.
    pub fn eval(&self, n: usize) -> f64 {
        let n = n as f64;
        let raw = match *self {
            EdgeProbability::SubCritical { exponent } => n.powf(-exponent),
            EdgeProbability::Critical { a } => a / n,
            EdgeProbability::SuperCritical { c, exponent } => c * n.powf(-exponent),
            EdgeProbability::Constant { p } => p,
        };
        raw.clamp(0.0, 1.0)
    }

    /// Human-readable regime label for experiment tables.
    pub fn label(&self) -> String {
        match *self {
            EdgeProbability::SubCritical { exponent } => format!("n^-{exponent} (o(1/n))"),
            EdgeProbability::Critical { a } => format!("{a}/n"),
            EdgeProbability::SuperCritical { c, exponent } => {
                format!("{c}*n^-{exponent} (w(1/n))")
            }
            EdgeProbability::Constant { p } => format!("p={p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::is_bipartite;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn extreme_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty = gilbert_bipartite(10, 10, 0.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        let full = gilbert_bipartite(4, 6, 1.0, &mut rng);
        assert_eq!(full.num_edges(), 24);
    }

    #[test]
    fn always_bipartite_with_left_right_split() {
        let mut rng = StdRng::seed_from_u64(2);
        for &p in &[0.01, 0.1, 0.5, 0.9] {
            let g = gilbert_bipartite(20, 30, p, &mut rng);
            assert!(is_bipartite(&g));
            // No edge inside a part.
            for (u, v) in g.edges() {
                assert!((u < 20) != (v < 20), "edge ({u},{v}) inside one part");
            }
        }
    }

    #[test]
    fn skip_and_naive_agree_in_expectation() {
        // Mean edge counts over many samples should both approximate n1*n2*p
        // within a loose tolerance (5 sigma).
        let (n1, n2, p) = (40usize, 50usize, 0.08f64);
        let expectation = n1 as f64 * n2 as f64 * p;
        let sigma = (n1 as f64 * n2 as f64 * p * (1.0 - p)).sqrt();
        let trials = 60;
        let mut rng = StdRng::seed_from_u64(3);
        let mean = |f: &mut dyn FnMut(&mut StdRng) -> Graph, rng: &mut StdRng| -> f64 {
            (0..trials).map(|_| f(rng).num_edges() as f64).sum::<f64>() / trials as f64
        };
        let m_skip = mean(&mut |r| gilbert_bipartite_skip(n1, n2, p, r), &mut rng);
        let m_naive = mean(&mut |r| gilbert_bipartite_naive(n1, n2, p, r), &mut rng);
        let tol = 5.0 * sigma / (trials as f64).sqrt();
        assert!(
            (m_skip - expectation).abs() < tol,
            "skip sampler mean {m_skip} too far from {expectation}"
        );
        assert!(
            (m_naive - expectation).abs() < tol,
            "naive sampler mean {m_naive} too far from {expectation}"
        );
    }

    #[test]
    fn skip_sampler_has_no_duplicate_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gilbert_bipartite_skip(100, 100, 0.05, &mut rng);
        // GraphBuilder dedups; a correct skip sampler never emits duplicates,
        // so the half-edge count must be exactly 2 * num_edges with all
        // adjacency lists strictly increasing.
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn regime_eval_and_labels() {
        let sub = EdgeProbability::SubCritical { exponent: 1.5 };
        let crit = EdgeProbability::Critical { a: 2.0 };
        let sup = EdgeProbability::SuperCritical {
            c: 1.0,
            exponent: 0.5,
        };
        let cons = EdgeProbability::Constant { p: 0.3 };
        assert!((sub.eval(100) - 0.001).abs() < 1e-12);
        assert!((crit.eval(100) - 0.02).abs() < 1e-12);
        assert!((sup.eval(100) - 0.1).abs() < 1e-12);
        assert!((cons.eval(100) - 0.3).abs() < 1e-12);
        // n * p(n) trends: sub -> 0, crit -> a, sup -> infinity.
        assert!(1e6 * sub.eval(1_000_000) < 0.01);
        assert!((1e6 * crit.eval(1_000_000) - 2.0).abs() < 1e-9);
        assert!(1e6 * sup.eval(1_000_000) > 100.0);
        for r in [sub, crit, sup, cons] {
            assert!(!r.label().is_empty());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = gilbert_bipartite(30, 30, 0.1, &mut StdRng::seed_from_u64(42));
        let g2 = gilbert_bipartite(30, 30, 0.1, &mut StdRng::seed_from_u64(42));
        assert_eq!(g1, g2);
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [1usize, 2, 3, 10, 100] {
            let t = random_tree(n, &mut rng);
            assert_eq!(t.num_vertices(), n);
            assert_eq!(t.num_edges(), n.saturating_sub(1));
            assert!(is_bipartite(&t), "trees have no cycles at all");
            // Connected: one component.
            assert_eq!(
                crate::components::Components::of(&t).count(),
                1.min(n).max(usize::from(n > 0))
            );
        }
    }

    #[test]
    fn random_trees_vary() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = random_tree(30, &mut rng);
        let b = random_tree(30, &mut rng);
        assert_ne!(a, b, "two random trees should almost surely differ");
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 3);
        assert_eq!(g.num_vertices(), 4 + 12);
        assert_eq!(g.num_edges(), 3 + 12);
        assert!(is_bipartite(&g));
        // Interior spine vertices have degree legs + 2.
        assert_eq!(g.degree(1), 5);
        assert_eq!(g.degree(0), 4);
    }

    #[test]
    fn regular_bipartite_is_exactly_regular() {
        let mut rng = StdRng::seed_from_u64(8);
        for (n, d) in [(5usize, 0usize), (6, 1), (9, 3), (12, 5)] {
            let g = regular_bipartite(n, d, &mut rng);
            assert!(is_bipartite(&g));
            assert_eq!(g.num_vertices(), 2 * n);
            assert_eq!(g.num_edges(), n * d);
            for v in g.vertices() {
                assert_eq!(g.degree(v), d, "vertex {v} not {d}-regular");
            }
            for (u, v) in g.edges() {
                assert!((u as usize) < n && (v as usize) >= n);
            }
        }
    }

    #[test]
    fn random_forest_has_forest_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        for (n, trees) in [(12usize, 1usize), (20, 3), (7, 7)] {
            let f = random_forest(n, trees, &mut rng);
            assert_eq!(f.num_vertices(), n);
            assert_eq!(f.num_edges(), n - trees.min(n));
            assert!(is_bipartite(&f));
            assert_eq!(
                crate::components::Components::of(&f).count(),
                trees.min(n).max(1)
            );
        }
    }

    #[test]
    fn bounded_degree_respects_cap() {
        let mut rng = StdRng::seed_from_u64(7);
        for max_deg in [1usize, 2, 4] {
            let g = bounded_degree_bipartite(40, 40, max_deg, 0.8, &mut rng);
            assert!(is_bipartite(&g));
            assert!(
                g.max_degree() <= max_deg,
                "degree {} exceeds cap {max_deg}",
                g.max_degree()
            );
            for (u, v) in g.edges() {
                assert!((u < 40) != (v < 40));
            }
        }
    }
}
