//! Inequitable 2-colorings (Definition 1 of the paper).
//!
//! An *inequitable 2-coloring* `(V'_1, V'_2)` of a bipartite graph is a
//! proper 2-coloring in which `V'_1` has maximum cardinality (maximum total
//! weight, in the weighted variant). It is the workhorse of both Algorithm 1
//! (step 8, weighted by processing requirements) and Algorithm 2 (step 1,
//! unweighted): the heavy class goes to the fast machines' complement, the
//! light class to the fast middle block.
//!
//! Per connected component a proper 2-coloring is unique up to swapping the
//! two classes, so the global optimum is obtained by orienting every
//! component with its heavier side into `V'_1` — independent choices, hence
//! a single `O(|V| + |E|)` pass (the complexity Definition 1 claims).

use crate::bipartite::{bipartition, OddCycle, Side};
use crate::components::Components;
use crate::graph::{Graph, Vertex};

/// Result of an inequitable 2-coloring: a proper 2-coloring whose first
/// class is weight-maximal among all proper 2-colorings.
#[derive(Clone, Debug)]
pub struct InequitableColoring {
    /// `true` iff the vertex belongs to the major class `V'_1`.
    in_major: Vec<bool>,
    /// Total weight of `V'_1`.
    major_weight: u64,
    /// Total weight of `V'_2`.
    minor_weight: u64,
}

impl InequitableColoring {
    /// Membership mask of `V'_1`.
    pub fn major_mask(&self) -> &[bool] {
        &self.in_major
    }

    /// Vertices of the major class `V'_1`, ascending.
    pub fn major(&self) -> Vec<Vertex> {
        mask_to_vertices(&self.in_major, true)
    }

    /// Vertices of the minor class `V'_2`, ascending.
    pub fn minor(&self) -> Vec<Vertex> {
        mask_to_vertices(&self.in_major, false)
    }

    /// Whether `v` is in the major class.
    #[inline]
    pub fn is_major(&self, v: Vertex) -> bool {
        self.in_major[v as usize]
    }

    /// Total weight of `V'_1`.
    pub fn major_weight(&self) -> u64 {
        self.major_weight
    }

    /// Total weight of `V'_2`.
    pub fn minor_weight(&self) -> u64 {
        self.minor_weight
    }

    /// `(|V'_1|, |V'_2|)` as counts.
    pub fn class_sizes(&self) -> (usize, usize) {
        let major = self.in_major.iter().filter(|&&b| b).count();
        (major, self.in_major.len() - major)
    }

    /// Checks that both classes are independent sets of `g`.
    pub fn is_proper(&self, g: &Graph) -> bool {
        g.edges()
            .all(|(u, v)| self.in_major[u as usize] != self.in_major[v as usize])
            || g.num_edges() == 0
    }
}

fn mask_to_vertices(mask: &[bool], want: bool) -> Vec<Vertex> {
    mask.iter()
        .enumerate()
        .filter(|&(_, &b)| b == want)
        .map(|(v, _)| v as Vertex)
        .collect()
}

/// Computes an inequitable 2-coloring with unit weights (maximizes `|V'_1|`).
pub fn inequitable_coloring(g: &Graph) -> Result<InequitableColoring, OddCycle> {
    let ones = vec![1u64; g.num_vertices()];
    inequitable_coloring_weighted(g, &ones)
}

/// Computes an inequitable 2-coloring maximizing the total `weights` of
/// `V'_1`. Weights are the jobs' processing requirements in Algorithm 1.
///
/// `O(|V| + |E|)`.
pub fn inequitable_coloring_weighted(
    g: &Graph,
    weights: &[u64],
) -> Result<InequitableColoring, OddCycle> {
    assert_eq!(
        weights.len(),
        g.num_vertices(),
        "one weight per vertex required"
    );
    let bp = bipartition(g)?;
    let comps = Components::of(g);

    let mut in_major = vec![false; g.num_vertices()];
    let mut major_weight = 0u64;
    let mut minor_weight = 0u64;
    for comp in comps.iter() {
        let mut left_w = 0u64;
        let mut right_w = 0u64;
        for &v in comp {
            match bp.side(v) {
                Side::Left => left_w += weights[v as usize],
                Side::Right => right_w += weights[v as usize],
            }
        }
        // Put the heavier side of this component into V'_1.
        let major_side = if left_w >= right_w {
            Side::Left
        } else {
            Side::Right
        };
        for &v in comp {
            in_major[v as usize] = bp.side(v) == major_side;
        }
        major_weight += left_w.max(right_w);
        minor_weight += left_w.min(right_w);
    }
    Ok(InequitableColoring {
        in_major,
        major_weight,
        minor_weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge_splits_evenly() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let col = inequitable_coloring(&g).unwrap();
        assert_eq!(col.class_sizes(), (1, 1));
        assert!(col.is_proper(&g));
    }

    #[test]
    fn isolated_vertices_all_major() {
        let g = Graph::empty(7);
        let col = inequitable_coloring(&g).unwrap();
        assert_eq!(col.class_sizes(), (7, 0));
        assert_eq!(col.major_weight(), 7);
        assert_eq!(col.minor_weight(), 0);
    }

    #[test]
    fn star_center_goes_minor() {
        // K_{1,5}: center 0 connected to 1..=5
        let g = Graph::complete_bipartite(1, 5);
        let col = inequitable_coloring(&g).unwrap();
        assert!(!col.is_major(0));
        assert_eq!(col.class_sizes(), (5, 1));
    }

    #[test]
    fn components_flip_independently() {
        // Two stars K_{1,3}; each center must land in the minor class.
        let (g, shift) =
            Graph::complete_bipartite(1, 3).disjoint_union(&Graph::complete_bipartite(1, 3));
        let col = inequitable_coloring(&g).unwrap();
        assert!(!col.is_major(0));
        assert!(!col.is_major(shift));
        assert_eq!(col.class_sizes(), (6, 2));
        assert!(col.is_proper(&g));
    }

    #[test]
    fn weights_override_cardinality() {
        // Star K_{1,3}, but the center weighs more than the three leaves.
        let g = Graph::complete_bipartite(1, 3);
        let col = inequitable_coloring_weighted(&g, &[100, 1, 1, 1]).unwrap();
        assert!(col.is_major(0));
        assert_eq!(col.major_weight(), 100);
        assert_eq!(col.minor_weight(), 3);
        assert_eq!(col.class_sizes(), (1, 3));
    }

    #[test]
    fn odd_cycle_is_rejected() {
        let g = Graph::cycle(5);
        assert!(inequitable_coloring(&g).is_err());
    }

    #[test]
    fn tie_breaks_still_proper_and_maximal() {
        // Path of 4: sides {0,2} and {1,3}, equal sizes; any orientation is
        // maximal. Weighted so that {1,3} is strictly heavier.
        let g = Graph::path(4);
        let col = inequitable_coloring_weighted(&g, &[1, 10, 1, 10]).unwrap();
        assert_eq!(col.major(), vec![1, 3]);
        assert_eq!(col.major_weight(), 20);
        assert!(col.is_proper(&g));
    }

    #[test]
    fn major_weight_at_least_half_total() {
        // Invariant used by Algorithm 1's proof: sum(V'_1) >= sum(V'_2).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let w = [5, 2, 9, 1, 1, 7];
        let col = inequitable_coloring_weighted(&g, &w).unwrap();
        assert!(col.major_weight() >= col.minor_weight());
        assert_eq!(
            col.major_weight() + col.minor_weight(),
            w.iter().sum::<u64>()
        );
    }
}
