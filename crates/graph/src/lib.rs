//! # bisched-graph
//!
//! Bipartite-graph substrate for the `bisched` workspace — the from-scratch
//! graph kit behind the reproduction of *"Scheduling on uniform and
//! unrelated machines with bipartite incompatibility graphs"*
//! (Pikies & Furmańczyk, IPPS 2022).
//!
//! Contents:
//!
//! * [`graph`] — compact undirected simple graphs on `u32` ids;
//! * [`bipartite`] — 2-coloring with odd-cycle witnesses;
//! * [`components`] — connected components (the unit of choice in the
//!   paper's algorithms);
//! * [`coloring`] — inequitable 2-colorings (Definition 1), weighted and
//!   unweighted;
//! * [`matching`] — Hopcroft–Karp, König covers, maximum independent sets;
//! * [`flow`] — Dinic max-flow;
//! * [`independent`] — maximum-*weight* independent sets (Algorithm 1,
//!   step 2), optionally containing a forced vertex set;
//! * [`random`] — Gilbert's `G_{n,n,p(n)}` samplers and the `p(n)` regimes
//!   of Section 4.1;
//! * [`gadgets`] — the Figure 1 components `H1`/`H2`/`H3` with executable
//!   Lemma 5–7 predicates;
//! * [`dot`] — Graphviz export.

#![warn(missing_docs)]
// Unsafe code is confined to bisched-obs (the model-checked ring)
// and bisched-bench (a counting allocator); everywhere else it is a
// hard error. The bisched-analyze forbid-unsafe lint keeps this list.
#![forbid(unsafe_code)]
pub mod bipartite;
pub mod coloring;
pub mod components;
pub mod dot;
pub mod flow;
pub mod gadgets;
pub mod graph;
pub mod independent;
pub mod matching;
pub mod random;

pub use bipartite::{bipartition, is_bipartite, Bipartition, OddCycle, Side};
pub use coloring::{inequitable_coloring, inequitable_coloring_weighted, InequitableColoring};
pub use components::Components;
pub use graph::{Graph, GraphBuilder, Vertex};
pub use independent::{max_weight_independent_set, max_weight_is_containing, WeightedIs};
pub use matching::{maximum_matching, Matching};
pub use random::{
    bounded_degree_bipartite, caterpillar, gilbert_bipartite, random_forest, random_tree,
    regular_bipartite, EdgeProbability,
};
