//! Bipartiteness testing and 2-colorings.
//!
//! The paper's entire problem class is `…|G = bipartite|C_max`, so "is this
//! graph bipartite, and what is its 2-coloring" is the first question every
//! algorithm asks. We return either a side assignment or an odd-cycle
//! witness, so callers can *prove* infeasibility of the bipartite model.

use crate::graph::{Graph, Vertex};

/// Which side of the bipartition a vertex lies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// First part (`V_1` in the paper).
    Left,
    /// Second part (`V_2` in the paper).
    Right,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn flip(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// A proper 2-coloring of a bipartite graph: one side per vertex.
///
/// Isolated vertices are assigned `Left` by convention; per-component
/// orientations can be flipped independently (used by the inequitable
/// coloring of Definition 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bipartition {
    sides: Vec<Side>,
}

impl Bipartition {
    /// Builds from an explicit side vector (validated in debug builds only).
    pub fn from_sides(sides: Vec<Side>) -> Self {
        Bipartition { sides }
    }

    /// The side of vertex `v`.
    #[inline]
    pub fn side(&self, v: Vertex) -> Side {
        self.sides[v as usize]
    }

    /// Raw side slice.
    #[inline]
    pub fn sides(&self) -> &[Side] {
        &self.sides
    }

    /// All vertices on `side`, ascending.
    pub fn part(&self, side: Side) -> Vec<Vertex> {
        self.sides
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == side)
            .map(|(v, _)| v as Vertex)
            .collect()
    }

    /// Sizes `(|Left|, |Right|)`.
    pub fn part_sizes(&self) -> (usize, usize) {
        let left = self.sides.iter().filter(|&&s| s == Side::Left).count();
        (left, self.sides.len() - left)
    }

    /// Checks properness against `g`: no edge inside a side.
    pub fn is_proper(&self, g: &Graph) -> bool {
        g.edges()
            .all(|(u, v)| self.sides[u as usize] != self.sides[v as usize])
    }
}

/// Witness that a graph is not bipartite: a cycle of odd length, returned as
/// the vertex sequence (first != last; the closing edge is implicit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OddCycle(pub Vec<Vertex>);

impl OddCycle {
    /// Validates that this really is an odd cycle of `g`.
    pub fn is_valid(&self, g: &Graph) -> bool {
        let cyc = &self.0;
        if cyc.len() < 3 || cyc.len().is_multiple_of(2) {
            return false;
        }
        let closing = g.has_edge(cyc[0], *cyc.last().unwrap());
        closing && cyc.windows(2).all(|w| g.has_edge(w[0], w[1]))
    }
}

/// BFS 2-coloring: `Ok` with a [`Bipartition`] (components colored
/// independently, roots on `Left`), or `Err` with an [`OddCycle`] witness.
///
/// `O(|V| + |E|)`.
pub fn bipartition(g: &Graph) -> Result<Bipartition, OddCycle> {
    let n = g.num_vertices();
    let mut side: Vec<Option<Side>> = vec![None; n];
    let mut parent: Vec<Vertex> = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();

    for root in 0..n as Vertex {
        if side[root as usize].is_some() {
            continue;
        }
        side[root as usize] = Some(Side::Left);
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            let su = side[u as usize].expect("queued vertices are colored");
            for &v in g.neighbors(u) {
                match side[v as usize] {
                    None => {
                        side[v as usize] = Some(su.flip());
                        parent[v as usize] = u;
                        queue.push_back(v);
                    }
                    Some(sv) if sv == su => {
                        return Err(extract_odd_cycle(&parent, u, v));
                    }
                    Some(_) => {}
                }
            }
        }
    }
    Ok(Bipartition {
        sides: side.into_iter().map(|s| s.expect("all colored")).collect(),
    })
}

/// Reconstructs an odd cycle from the BFS forest when the conflicting edge
/// `{u, v}` joins two same-side vertices: walk both to their lowest common
/// ancestor and splice the paths.
fn extract_odd_cycle(parent: &[Vertex], u: Vertex, v: Vertex) -> OddCycle {
    let ancestors_of = |mut x: Vertex| {
        let mut path = vec![x];
        while parent[x as usize] != u32::MAX {
            x = parent[x as usize];
            path.push(x);
        }
        path
    };
    let pu = ancestors_of(u);
    let pv = ancestors_of(v);
    // Find LCA: deepest common vertex of the two root paths.
    let in_pu: std::collections::HashMap<Vertex, usize> =
        pu.iter().enumerate().map(|(i, &x)| (x, i)).collect();
    let (mut iu, mut iv) = (pu.len(), 0usize);
    for (j, &x) in pv.iter().enumerate() {
        if let Some(&i) = in_pu.get(&x) {
            iu = i;
            iv = j;
            break;
        }
    }
    assert!(iu < pu.len(), "BFS tree paths must meet at a common root");
    // Cycle: u -> ... -> lca -> ... -> v (reversed), closed by edge {v, u}.
    let mut cycle: Vec<Vertex> = pu[..=iu].to_vec();
    cycle.extend(pv[..iv].iter().rev());
    OddCycle(cycle)
}

/// Convenience: `true` iff `g` has no odd cycle.
pub fn is_bipartite(g: &Graph) -> bool {
    bipartition(g).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_is_bipartite_with_alternating_sides() {
        let g = Graph::path(5);
        let bp = bipartition(&g).expect("paths are bipartite");
        assert!(bp.is_proper(&g));
        assert_eq!(bp.side(0), Side::Left);
        assert_eq!(bp.side(1), Side::Right);
        assert_eq!(bp.side(2), Side::Left);
    }

    #[test]
    fn even_cycle_bipartite_odd_cycle_not() {
        assert!(is_bipartite(&Graph::cycle(8)));
        let g = Graph::cycle(7);
        let witness = bipartition(&g).expect_err("odd cycles are not bipartite");
        assert!(
            witness.is_valid(&g),
            "witness {witness:?} must be a real odd cycle"
        );
    }

    #[test]
    fn triangle_witness_has_length_three() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let witness = bipartition(&g).unwrap_err();
        assert_eq!(witness.0.len(), 3);
        assert!(witness.is_valid(&g));
    }

    #[test]
    fn odd_cycle_hanging_off_a_path_is_found() {
        // 0-1-2 path, then triangle 2-3-4-2
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 2)]);
        let witness = bipartition(&g).unwrap_err();
        assert!(witness.is_valid(&g));
    }

    #[test]
    fn complete_bipartite_sides_recovered() {
        let g = Graph::complete_bipartite(3, 5);
        let bp = bipartition(&g).unwrap();
        assert!(bp.is_proper(&g));
        let (l, r) = bp.part_sizes();
        assert_eq!(l.min(r), 3);
        assert_eq!(l.max(r), 5);
    }

    #[test]
    fn isolated_vertices_default_left() {
        let g = Graph::empty(4);
        let bp = bipartition(&g).unwrap();
        assert_eq!(bp.part_sizes(), (4, 0));
        assert_eq!(bp.part(Side::Left), vec![0, 1, 2, 3]);
        assert!(bp.part(Side::Right).is_empty());
    }

    #[test]
    fn disconnected_components_colored_independently() {
        let (g, _) = Graph::path(3).disjoint_union(&Graph::cycle(4));
        let bp = bipartition(&g).unwrap();
        assert!(bp.is_proper(&g));
    }
}
