//! Maximum bipartite matching (Hopcroft–Karp) and König's theorem.
//!
//! Matchings drive the random-graph analysis of Section 4.1: the size
//! `μ(G_{n,n,p})` lower-bounds the number of jobs that cannot all sit on the
//! fastest machine (via König: `|V| − α(G) = μ(G)` for bipartite `G`), which
//! is exactly the denominator of Lemma 14's `1.6` ratio. The unweighted
//! minimum vertex cover / maximum independent set also fall out here; the
//! *weighted* versions needed by Algorithm 1 live in [`crate::independent`].

use crate::bipartite::{Bipartition, Side};
use crate::graph::{Graph, Vertex};

const NIL: u32 = u32::MAX;

/// A matching in a bipartite graph: `mate[v]` is `v`'s partner or `None`.
#[derive(Clone, Debug)]
pub struct Matching {
    mate: Vec<u32>,
    size: usize,
}

impl Matching {
    /// Number of matched edges, `μ(G)`.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The partner of `v`, if matched.
    pub fn mate(&self, v: Vertex) -> Option<Vertex> {
        let m = self.mate[v as usize];
        (m != NIL).then_some(m)
    }

    /// Whether `v` is matched.
    pub fn is_matched(&self, v: Vertex) -> bool {
        self.mate[v as usize] != NIL
    }

    /// The matched edges as pairs `(u, v)` with `u < v`.
    pub fn edges(&self) -> Vec<(Vertex, Vertex)> {
        self.mate
            .iter()
            .enumerate()
            .filter_map(|(u, &v)| (v != NIL && (u as u32) < v).then_some((u as u32, v)))
            .collect()
    }

    /// Validates that this is a matching of `g`: partners are mutual and
    /// every matched pair is an edge.
    pub fn is_valid(&self, g: &Graph) -> bool {
        self.mate.iter().enumerate().all(|(u, &v)| {
            v == NIL || (self.mate[v as usize] == u as u32 && g.has_edge(u as Vertex, v))
        })
    }
}

/// Hopcroft–Karp maximum matching. `O(|E| √|V|)`.
pub fn maximum_matching(g: &Graph, bp: &Bipartition) -> Matching {
    let n = g.num_vertices();
    let left: Vec<Vertex> = bp.part(Side::Left);
    let mut mate = vec![NIL; n];
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    let mut size = 0usize;

    loop {
        // BFS from free left vertices, layering by alternating paths.
        queue.clear();
        for &u in &left {
            if mate[u as usize] == NIL {
                dist[u as usize] = 0;
                queue.push_back(u);
            } else {
                dist[u as usize] = u32::MAX;
            }
        }
        let mut found_augmenting = false;
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                let w = mate[v as usize];
                if w == NIL {
                    found_augmenting = true;
                } else if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[u as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: vertex-disjoint shortest augmenting paths.
        for &u in &left {
            if mate[u as usize] == NIL && try_augment(g, u, &mut mate, &mut dist) {
                size += 1;
            }
        }
    }
    Matching { mate, size }
}

fn try_augment(g: &Graph, u: Vertex, mate: &mut [u32], dist: &mut [u32]) -> bool {
    for &v in g.neighbors(u) {
        let w = mate[v as usize];
        if w == NIL || (dist[w as usize] == dist[u as usize] + 1 && try_augment(g, w, mate, dist)) {
            mate[u as usize] = v;
            mate[v as usize] = u;
            return true;
        }
    }
    // Dead end: prune this vertex for the rest of the phase.
    dist[u as usize] = u32::MAX;
    false
}

/// Minimum vertex cover by König's theorem: `(L ∖ Z) ∪ (R ∩ Z)` where `Z` is
/// the set reachable from free left vertices by alternating paths.
/// `|cover| = μ(G)`.
pub fn minimum_vertex_cover(g: &Graph, bp: &Bipartition, matching: &Matching) -> Vec<Vertex> {
    let n = g.num_vertices();
    let mut in_z = vec![false; n];
    let mut stack: Vec<Vertex> = Vec::new();
    for v in 0..n as Vertex {
        if bp.side(v) == Side::Left && !matching.is_matched(v) {
            in_z[v as usize] = true;
            stack.push(v);
        }
    }
    while let Some(u) = stack.pop() {
        debug_assert_eq!(bp.side(u), Side::Left);
        for &v in g.neighbors(u) {
            // Travel left->right along non-matching edges, right->left along
            // matching edges.
            if matching.mate(u) == Some(v) {
                continue;
            }
            if !in_z[v as usize] {
                in_z[v as usize] = true;
                if let Some(w) = matching.mate(v) {
                    if !in_z[w as usize] {
                        in_z[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
        }
    }
    (0..n as Vertex)
        .filter(|&v| match bp.side(v) {
            Side::Left => !in_z[v as usize],
            Side::Right => in_z[v as usize],
        })
        .collect()
}

/// Maximum independent set of a bipartite graph: the complement of a minimum
/// vertex cover. `α(G) = |V| − μ(G)` (König).
pub fn maximum_independent_set(g: &Graph, bp: &Bipartition, matching: &Matching) -> Vec<Vertex> {
    let cover = minimum_vertex_cover(g, bp, matching);
    let mut in_cover = vec![false; g.num_vertices()];
    for &v in &cover {
        in_cover[v as usize] = true;
    }
    (0..g.num_vertices() as Vertex)
        .filter(|&v| !in_cover[v as usize])
        .collect()
}

/// Whether `cover` covers every edge of `g`.
pub fn is_vertex_cover(g: &Graph, cover: &[Vertex]) -> bool {
    let mut mask = vec![false; g.num_vertices()];
    for &v in cover {
        mask[v as usize] = true;
    }
    g.edges().all(|(u, v)| mask[u as usize] || mask[v as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::bipartition;

    fn solve(g: &Graph) -> (Bipartition, Matching) {
        let bp = bipartition(g).expect("test graphs are bipartite");
        let m = maximum_matching(g, &bp);
        assert!(m.is_valid(g));
        (bp, m)
    }

    #[test]
    fn single_edge() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let (_, m) = solve(&g);
        assert_eq!(m.size(), 1);
        assert_eq!(m.mate(0), Some(1));
    }

    #[test]
    fn path_matching_is_floor_half() {
        for n in 2..12 {
            let g = Graph::path(n);
            let (_, m) = solve(&g);
            assert_eq!(m.size(), n / 2, "path of {n}");
        }
    }

    #[test]
    fn complete_bipartite_saturates_smaller_side() {
        let g = Graph::complete_bipartite(3, 7);
        let (_, m) = solve(&g);
        assert_eq!(m.size(), 3);
    }

    #[test]
    fn even_cycle_perfect_matching() {
        let g = Graph::cycle(10);
        let (_, m) = solve(&g);
        assert_eq!(m.size(), 5);
    }

    #[test]
    fn star_matches_one() {
        let g = Graph::complete_bipartite(1, 9);
        let (_, m) = solve(&g);
        assert_eq!(m.size(), 1);
    }

    #[test]
    fn augmenting_path_needed() {
        // Classic case where greedy fails: 0-2, 0-3, 1-2 with left {0,1}.
        let g = Graph::from_edges(4, &[(0, 2), (0, 3), (1, 2)]);
        let (_, m) = solve(&g);
        assert_eq!(m.size(), 2);
    }

    #[test]
    fn konig_cover_size_equals_matching() {
        let graphs = vec![
            Graph::path(9),
            Graph::cycle(8),
            Graph::complete_bipartite(4, 6),
            Graph::from_edges(7, &[(0, 1), (0, 3), (2, 3), (2, 5), (4, 5), (4, 1), (6, 1)]),
        ];
        for g in graphs {
            let (bp, m) = solve(&g);
            let cover = minimum_vertex_cover(&g, &bp, &m);
            assert_eq!(cover.len(), m.size(), "König on {g:?}");
            assert!(is_vertex_cover(&g, &cover));
        }
    }

    #[test]
    fn independent_set_complements_cover() {
        let g = Graph::complete_bipartite(4, 6);
        let (bp, m) = solve(&g);
        let is = maximum_independent_set(&g, &bp, &m);
        assert_eq!(is.len(), g.num_vertices() - m.size());
        assert!(g.is_independent_set(&is));
    }

    #[test]
    fn empty_graph_full_independence() {
        let g = Graph::empty(5);
        let (bp, m) = solve(&g);
        assert_eq!(m.size(), 0);
        let is = maximum_independent_set(&g, &bp, &m);
        assert_eq!(is.len(), 5);
    }
}
