//! Property tests for the graph substrate: structural invariants that must
//! hold on arbitrary bipartite (and near-bipartite) inputs.

use bisched_graph::{
    bipartition, gilbert_bipartite, inequitable_coloring, inequitable_coloring_weighted,
    max_weight_independent_set, max_weight_is_containing, maximum_matching, Components, Graph,
    Side,
};
use proptest::prelude::*;

/// Random bipartite graph from part sizes and a bitmask over pairs.
fn bipartite_graph(max_side: usize) -> impl Strategy<Value = Graph> {
    (1..=max_side, 1..=max_side).prop_flat_map(|(a, b)| {
        proptest::collection::vec(any::<bool>(), a * b).prop_map(move |mask| {
            let mut edges = Vec::new();
            for i in 0..a {
                for j in 0..b {
                    if mask[i * b + j] {
                        edges.push((i as u32, (a + j) as u32));
                    }
                }
            }
            Graph::from_edges(a + b, &edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bipartition_is_always_proper(g in bipartite_graph(10)) {
        let bp = bipartition(&g).expect("constructed bipartite");
        prop_assert!(bp.is_proper(&g));
        let (l, r) = bp.part_sizes();
        prop_assert_eq!(l + r, g.num_vertices());
    }

    #[test]
    fn matching_vertices_are_disjoint_edges(g in bipartite_graph(10)) {
        let bp = bipartition(&g).unwrap();
        let m = maximum_matching(&g, &bp);
        prop_assert!(m.is_valid(&g));
        // Matched edges connect opposite sides.
        for (u, v) in m.edges() {
            prop_assert!(bp.side(u) != bp.side(v));
        }
        // Maximum: no augmenting single edge between two free vertices.
        for (u, v) in g.edges() {
            prop_assert!(
                m.is_matched(u) || m.is_matched(v),
                "edge ({u},{v}) with both endpoints free contradicts maximality"
            );
        }
    }

    #[test]
    fn koenig_alpha_plus_mu_is_v(g in bipartite_graph(9)) {
        let bp = bipartition(&g).unwrap();
        let mu = maximum_matching(&g, &bp).size();
        let mwis = max_weight_independent_set(&g, &vec![1; g.num_vertices()]);
        prop_assert_eq!(mwis.weight as usize + mu, g.num_vertices());
    }

    #[test]
    fn mwis_beats_both_sides(g in bipartite_graph(9), seed in 0u64..500) {
        let n = g.num_vertices();
        let w: Vec<u64> = (0..n).map(|i| 1 + (seed + 3 * i as u64) % 11).collect();
        let mwis = max_weight_independent_set(&g, &w);
        prop_assert!(g.is_independent_set(&mwis.vertices));
        // Each side of the bipartition is an independent set, so MWIS
        // weight is at least the max side weight.
        let bp = bipartition(&g).unwrap();
        for side in [Side::Left, Side::Right] {
            let sw: u64 = bp.part(side).iter().map(|&v| w[v as usize]).sum();
            prop_assert!(mwis.weight >= sw);
        }
    }

    #[test]
    fn forced_mwis_contains_and_dominates(g in bipartite_graph(8), seed in 0u64..500) {
        let n = g.num_vertices();
        let w: Vec<u64> = (0..n).map(|i| 1 + (seed + i as u64) % 7).collect();
        // Force a random independent single vertex; result must contain it
        // and weigh at least w(forced) + MWIS of the graph minus N[v].
        let v = (seed % n as u64) as u32;
        let got = max_weight_is_containing(&g, &w, &[v]).expect("singleton independent");
        prop_assert!(got.vertices.contains(&v));
        prop_assert!(g.is_independent_set(&got.vertices));
        let free = max_weight_independent_set(&g, &w);
        prop_assert!(got.weight <= free.weight);
    }

    #[test]
    fn inequitable_is_optimal_among_orientations(g in bipartite_graph(7), seed in 0u64..500) {
        let n = g.num_vertices();
        let w: Vec<u64> = (0..n).map(|i| 1 + (seed * 5 + i as u64) % 9).collect();
        let col = inequitable_coloring_weighted(&g, &w).unwrap();
        // Exhaust all per-component orientations; none beats the greedy.
        let comps = Components::of(&g);
        let bp = bipartition(&g).unwrap();
        let c = comps.count();
        prop_assume!(c <= 12);
        let mut best = 0u64;
        for mask in 0u32..(1 << c) {
            let mut major = 0u64;
            for (k, members) in comps.iter().enumerate() {
                let flip = mask >> k & 1 == 1;
                for &v in members {
                    let is_left = bp.side(v) == Side::Left;
                    if is_left != flip {
                        major += w[v as usize];
                    }
                }
            }
            best = best.max(major);
        }
        prop_assert_eq!(col.major_weight(), best);
    }

    #[test]
    fn components_partition_vertices(g in bipartite_graph(10)) {
        let comps = Components::of(&g);
        let mut seen = vec![false; g.num_vertices()];
        for members in comps.iter() {
            for &v in members {
                prop_assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
        // Every edge stays within one component.
        for (u, v) in g.edges() {
            prop_assert!(comps.same_component(u, v));
        }
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(g in bipartite_graph(9), seed in 0u64..500) {
        let n = g.num_vertices();
        let keep: Vec<bool> = (0..n).map(|i| (seed >> (i % 60)) & 1 == 0).collect();
        let (sub, remap) = g.induced_subgraph(&keep);
        for u in 0..n {
            for v in 0..n {
                if u < v && keep[u] && keep[v] {
                    prop_assert_eq!(
                        g.has_edge(u as u32, v as u32),
                        sub.has_edge(remap[u], remap[v])
                    );
                }
            }
        }
    }
}

#[test]
fn gilbert_respects_structure_at_scale() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(71);
    let g = gilbert_bipartite(500, 500, 0.01, &mut rng);
    let bp = bipartition(&g).unwrap();
    assert!(bp.is_proper(&g));
    let m = maximum_matching(&g, &bp);
    assert!(m.is_valid(&g));
    let col = inequitable_coloring(&g).unwrap();
    assert!(col.is_proper(&g));
    // |V'2| >= mu (the Lemma 14 direction used by Algorithm 2's analysis).
    assert!(col.class_sizes().1 >= m.size());
}
